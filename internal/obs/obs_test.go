package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations around 1µs, 10 slow around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := r.Snapshot().Hists["lat"]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// p50 must sit in the microsecond bucket, p95/p99 in the millisecond
	// one. Buckets are powers of two, so compare against loose bounds.
	if s.P50NS > 4_000 {
		t.Fatalf("p50 = %dns, want ~1µs", s.P50NS)
	}
	if s.P95NS < 500_000 || s.P95NS > 4_000_000 {
		t.Fatalf("p95 = %dns, want ~1ms", s.P95NS)
	}
	if s.P99NS < s.P95NS {
		t.Fatalf("p99 (%d) < p95 (%d)", s.P99NS, s.P95NS)
	}
	if s.MeanNS() == 0 {
		t.Fatal("mean = 0")
	}
}

func TestHistogramNegativeAndEmpty(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != 0 {
		t.Fatalf("snapshot after negative observe: %+v", s)
	}
	var empty Histogram
	es := empty.Snapshot()
	if q := es.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(3)
	b.Counter("x").Add(4)
	b.Counter("y").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5)
	a.Histogram("h").Observe(time.Microsecond)
	b.Histogram("h").Observe(time.Millisecond)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["x"] != 7 || s.Counters["y"] != 1 {
		t.Fatalf("merged counters: %v", s.Counters)
	}
	if s.Gauges["g"] != 7 {
		t.Fatalf("merged gauge: %v", s.Gauges)
	}
	h := s.Hists["h"]
	if h.Count != 2 {
		t.Fatalf("merged hist count = %d, want 2", h.Count)
	}
	if h.P99NS < 500_000 {
		t.Fatalf("merged p99 = %d, want ~1ms", h.P99NS)
	}
	// Merge into a zero-value snapshot must also work.
	var zero Snapshot
	zero.Merge(s)
	if zero.Counters["x"] != 7 {
		t.Fatalf("merge into zero: %v", zero.Counters)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(42 * time.Microsecond)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Hists["h"].Count != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("d")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTraceBufferRing(t *testing.T) {
	tb := NewTraceBuffer(4)
	for i := 1; i <= 6; i++ {
		tb.Append(Span{Trace: uint64(i), Hop: uint8(i)})
	}
	if tb.Len() != 4 {
		t.Fatalf("len = %d, want 4", tb.Len())
	}
	all := tb.Snapshot(0)
	if len(all) != 4 || all[0].Trace != 3 || all[3].Trace != 6 {
		t.Fatalf("ring order wrong: %+v", all)
	}
	// Filtered view.
	tb.Append(Span{Trace: 6, Hop: 9})
	got := tb.Snapshot(6)
	if len(got) != 2 || got[1].Hop != 9 {
		t.Fatalf("filter by trace: %+v", got)
	}
}

func TestTraceBufferDisabled(t *testing.T) {
	tb := NewTraceBuffer(0)
	tb.Append(Span{Trace: 1})
	if tb.Len() != 0 || tb.Snapshot(0) != nil {
		t.Fatal("disabled buffer recorded spans")
	}
	var nilBuf *TraceBuffer
	nilBuf.Append(Span{Trace: 1}) // must not panic
	if nilBuf.Snapshot(0) != nil || nilBuf.Len() != 0 {
		t.Fatal("nil buffer misbehaved")
	}
}
