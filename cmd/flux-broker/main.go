// Command flux-broker runs one CMB rank of a TCP-deployed comms
// session. Start one per node (or per process for local testing):
//
//	# 3-rank session on localhost, binary tree; rank addresses are
//	# host:(baseport+rank).
//	flux-broker -rank 0 -size 3 -base-port 9600 &
//	flux-broker -rank 1 -size 3 -base-port 9600 &
//	flux-broker -rank 2 -size 3 -base-port 9600 &
//	flux -connect 127.0.0.1:9602 ping
//
// Explicit addressing is also supported via -listen/-parent/-ring-next
// for multi-host deployments. All ranks must share the session key
// (-key-file, default key "flux-session").
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fluxgo/internal/cas"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
	"fluxgo/internal/modules/group"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/jobsvc"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/modules/logmod"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/session"
	"fluxgo/internal/wire"
)

var (
	rankFlag     = flag.Int("rank", 0, "this broker's rank")
	sizeFlag     = flag.Int("size", 1, "session size (number of ranks)")
	arityFlag    = flag.Int("arity", 2, "tree fan-out")
	basePortFlag = flag.Int("base-port", 9600, "rank r listens on base-port+r (single-host mode)")
	hostFlag     = flag.String("host", "127.0.0.1", "host for single-host mode addresses")
	listenFlag   = flag.String("listen", "", "explicit listen address (overrides single-host mode)")
	parentFlag   = flag.String("parent", "", "explicit tree-parent address")
	ringFlag     = flag.String("ring-next", "", "explicit ring-successor address")
	keyFileFlag  = flag.String("key-file", "", "file holding the shared session key")
	hbFlag       = flag.Duration("hb", 2*time.Second, "heartbeat interval")
	verboseFlag  = flag.Bool("v", false, "log broker diagnostics to stderr")
	debugFlag    = flag.String("debug-addr", "", "serve expvar (/debug/vars, incl. the broker metrics registry) and pprof (/debug/pprof) on this address")
	kvsDirFlag   = flag.String("kvs-dir", "", "root directory for the KVS durable tier (each rank persists under its own rank<r>/<svc> subdir); empty disables persistence")
	ckptFlag     = flag.Int("kvs-checkpoint-every", 64, "fold the KVS WAL into a pack every N commits (with -kvs-dir)")
)

func main() {
	flag.Parse()
	key := []byte("flux-session")
	if *keyFileFlag != "" {
		b, err := os.ReadFile(*keyFileFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flux-broker:", err)
			os.Exit(1)
		}
		key = b
	}

	listen := *listenFlag
	parent := *parentFlag
	ringNext := *ringFlag
	if listen == "" {
		addrOf := func(r int) string { return fmt.Sprintf("%s:%d", *hostFlag, *basePortFlag+r) }
		listen = addrOf(*rankFlag)
		var err error
		parent, ringNext, err = session.TreeAddrs(*rankFlag, *sizeFlag, *arityFlag, addrOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flux-broker:", err)
			os.Exit(1)
		}
	}

	var logf func(string, ...any)
	if *verboseFlag {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "flux-broker: "+format+"\n", args...)
		}
	}

	b, err := session.StartTCPBroker(session.TCPConfig{
		Rank:         *rankFlag,
		Size:         *sizeFlag,
		Arity:        *arityFlag,
		Listen:       listen,
		ParentAddr:   parent,
		RingNextAddr: ringNext,
		Key:          key,
		Log:          logf,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvsConfig()),
			hb.Factory(hb.Config{Interval: *hbFlag}),
			live.Factory(live.Config{}),
			logmod.Factory(logmod.Config{Sink: os.Stderr}),
			group.Factory,
			barrier.Factory,
			wexec.Factory(wexec.Config{}),
			resrc.Factory(resrc.Config{}),
			jobsvc.Factory(jobsvc.Config{Backfill: true}),
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flux-broker:", err)
		os.Exit(1)
	}
	fmt.Printf("flux-broker: rank %d/%d up on %s\n", *rankFlag, *sizeFlag, b.Addr())

	if *debugFlag != "" {
		// Publish the broker's metrics registry as one expvar; pprof
		// registers its handlers on DefaultServeMux via its import.
		expvar.Publish(wire.ServiceCMB, expvar.Func(func() any { return b.B.Metrics().Snapshot() }))
		srv := &http.Server{Addr: *debugFlag, ReadHeaderTimeout: 5 * time.Second}
		//fluxlint:ignore goroutine-lifecycle debug server lives for the process; srv.Close on exit stops it
		go func() {
			fmt.Printf("flux-broker: debug endpoint on http://%s/debug/vars\n", *debugFlag)
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "flux-broker: debug endpoint:", err)
			}
		}()
		defer srv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flux-broker: shutting down")
	b.Close()
}

// kvsConfig builds the KVS module config, wiring the durable disk tier
// when -kvs-dir is set (the module namespaces the root by rank and
// service itself), so a restarted broker cold-loads its cache — and,
// at rank 0, the master's root commit — from disk.
func kvsConfig() kvs.ModuleConfig {
	cfg := kvs.ModuleConfig{CacheMaxAge: 5 * time.Minute}
	if *kvsDirFlag != "" {
		cfg.Dir = *kvsDirFlag
		cfg.FS = cas.DirFS()
		cfg.CheckpointEvery = *ckptFlag
	}
	return cfg
}
