package kvs

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/cas"
	"fluxgo/internal/chaosenv"
	"fluxgo/internal/session"
	"fluxgo/internal/transport"
)

const recoveryShards = 2

// recoveryPrefix returns a key prefix owned by shard (shard mapping
// hashes the first path component).
func recoveryPrefix(shard int) string {
	for i := 0; ; i++ {
		p := fmt.Sprintf("p%d", i)
		if ShardOf(p, recoveryShards) == shard {
			return p
		}
	}
}

// TestCrashRestartSoak is the durability headline: a sharded, durable
// KVS session under seeded chaos that kills, silently crashes, and
// restarts interior ranks AND shard masters — with link faults and
// storage faults (torn writes, fsync failures, short reads, bit flips)
// active throughout — then heals, restarts every dead rank, and proves
//
//   - safety: every commit acknowledged to a writer before a crash is
//     still readable after recovery, and no shard's version regressed
//     below its highest acknowledged commit;
//   - liveness: the fully restarted session commits again on every
//     shard.
//
// Each seed runs as its own subtest; replay a CI failure with
// FLUX_CHAOS_SEEDS=<seed> (and optionally CHAOS_SOAK=30s).
func TestCrashRestartSoak(t *testing.T) {
	dur := chaosenv.Duration(time.Second)
	seeds := chaosenv.Seeds(1, 2, 3, 4, 5, 6)
	if testing.Short() {
		dur = 400 * time.Millisecond
		if len(seeds) > 2 {
			seeds = seeds[:2]
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashRestartSoak(t, seed, dur)
		})
	}
}

func runCrashRestartSoak(t *testing.T, seed int64, dur time.Duration) {
	t.Logf("crash-restart soak: seed=%d duration=%s (replay with FLUX_CHAOS_SEEDS=%d)", seed, dur, seed)

	const size = 15
	dir := t.TempDir()

	// Per-rank simulated disks: a crash truncates exactly that rank's
	// files back to their last fsync watermark, like a machine reboot.
	disks := make([]*cas.FaultyFS, size)
	for r := range disks {
		disks[r] = cas.NewFaultyFS(cas.DirFS(), seed*1000+int64(r))
	}
	mods := make([]session.ModuleFactory, recoveryShards)
	for i := 0; i < recoveryShards; i++ {
		i := i
		mods[i] = func(rank, sz int) broker.Module {
			return NewModule(ModuleConfig{
				Dir:             dir,
				FS:              disks[rank],
				CheckpointEvery: 4,
				Service:         ShardService(i),
				MasterRank:      ShardMasterRank(i, recoveryShards, sz),
			})
		}
	}

	s, err := session.New(session.Options{
		Size:           size,
		Arity:          2,
		FaultInjection: true,
		FaultSeed:      seed,
		RPCTimeout:     time.Second,
		SyncInterval:   300 * time.Millisecond,
		Modules:        mods,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ch := s.Chaos()
	for r := 0; r < size; r++ {
		ch.RegisterStorage(r, disks[r])
	}

	// With FLUX_DUMP_DIR set (CI), storage faults and a failed soak
	// leave flight-recorder dumps behind as artifacts.
	var flight *session.Recorder
	if dumpDir := chaosenv.DumpDir(); dumpDir != "" {
		flight = s.EnableFlightRecorder(filepath.Join(dumpDir, fmt.Sprintf("recovery-seed%d", seed)))
	}
	t.Cleanup(func() {
		if flight == nil {
			return
		}
		if t.Failed() {
			flight.Dump("soak-failed")
		}
		flight.Wait()
	})
	var masters [recoveryShards]int
	for i := range masters {
		masters[i] = ShardMasterRank(i, recoveryShards, size) // ranks 0 and 7
	}

	// The acknowledged-commit ledger: per shard, the last value acked
	// per key plus the highest acked version. Values per key only grow,
	// so recovery may legally expose a NEWER value (a commit applied but
	// whose ack was lost to a crash) — never an older one.
	var mu sync.Mutex
	var acked [recoveryShards]map[string]int
	var ackedVer [recoveryShards]uint64
	for i := range acked {
		acked[i] = map[string]int{}
	}

	stopWrite := make(chan struct{})
	stopChaos := make(chan struct{})
	var writers, chaosWG sync.WaitGroup

	// One writer per shard, at rank 0 (the only immortal rank). Chaos
	// errors are fine; only acknowledged commits join the ledger.
	for sh := 0; sh < recoveryShards; sh++ {
		writers.Add(1)
		go func(sh int) {
			defer writers.Done()
			h := s.Handle(0)
			defer h.Close()
			c := NewClientFor(h, ShardService(sh))
			prefix := recoveryPrefix(sh)
			for i := 1; ; i++ {
				select {
				case <-stopWrite:
					return
				default:
				}
				key := fmt.Sprintf("%s.w.k%d", prefix, i%8)
				if err := c.Put(key, i); err != nil {
					continue
				}
				v, err := c.Commit()
				if err != nil {
					continue
				}
				mu.Lock()
				acked[sh][key] = i
				if v > ackedVer[sh] {
					ackedVer[sh] = v
				}
				mu.Unlock()
			}
		}(sh)
	}

	// Chaos driver: seeded schedule of kills, silent crashes (detected
	// sometimes), restarts, link noise, and storage faults. At most two
	// victims dead at once so a quorum of the tree keeps routing.
	victims := []int{1, 2, 3, 4, 5, 6, masters[1]}
	rng := rand.New(rand.NewSource(seed))
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		ticker := time.NewTicker(40 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopChaos:
				return
			case <-ticker.C:
			}
			if flight != nil {
				flight.Poll() // poison latches and errno spikes dump themselves
			}
			var deadRanks []int
			for _, v := range victims {
				if !s.Alive(v) {
					deadRanks = append(deadRanks, v)
				}
			}
			switch rng.Intn(8) {
			case 0: // graceful kill: links EOF, children re-parent
				if len(deadRanks) >= 2 {
					continue
				}
				v := victims[rng.Intn(len(victims))]
				if err := s.Kill(v); err != nil {
					t.Errorf("kill %d: %v", v, err)
				}
			case 1: // silent crash: storage truncates to its watermark
				if len(deadRanks) >= 2 {
					continue
				}
				v := victims[rng.Intn(len(victims))]
				if !s.Alive(v) {
					continue
				}
				if err := ch.Crash(v); err != nil {
					t.Errorf("crash %d: %v", v, err)
					continue
				}
				if rng.Intn(2) == 0 {
					ch.Sever(v) // failure detection, sometimes
				}
			case 2, 3: // bring a dead rank back, mid-chaos
				if len(deadRanks) == 0 {
					continue
				}
				r := deadRanks[rng.Intn(len(deadRanks))]
				if err := s.Restart(r); err != nil {
					// Retryable: the handshake can lose to active faults;
					// the rank reads as dead again and a later tick retries.
					t.Logf("restart %d (will retry): %v", r, err)
				}
			case 4: // background link noise
				ch.SetAllFaults(transport.Faults{
					Drop: 0.03, Delay: time.Millisecond, Jitter: time.Millisecond,
				})
			case 5: // storage faults on a random rank's disk
				ch.SetStorageFaults(rng.Intn(size), cas.FSFaults{
					TornWrite: 0.2, SyncFail: 0.2, ShortRead: 0.05, BitFlip: 0.02,
				})
			case 6, 7: // heal links and disks
				ch.Heal()
				for r := 0; r < size; r++ {
					ch.SetStorageFaults(r, cas.FSFaults{})
				}
			}
		}
	}()

	// healAndRestartAll heals every link and disk fault and brings every
	// dead rank back, retrying while the overlay settles.
	healAndRestartAll := func(what string) {
		ch.Heal()
		for r := 0; r < size; r++ {
			ch.SetStorageFaults(r, cas.FSFaults{})
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			allUp := true
			for r := 1; r < size; r++ {
				if s.Alive(r) {
					continue
				}
				allUp = false
				if err := s.Restart(r); err != nil {
					t.Logf("%s restart %d: %v", what, r, err)
				}
			}
			if allUp {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dead ranks never all restarted after %s (seed %d)", what, seed)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	waitOr := func(wg *sync.WaitGroup, what string) {
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("liveness violation: %s still running after 60s (seed %d)", what, seed)
		}
	}

	time.Sleep(dur)
	close(stopChaos)
	waitOr(&chaosWG, "chaos driver")

	// Calm window: heal, restart everyone, and let the writers commit
	// against the recovered session — so every seed freezes a ledger
	// with real post-recovery commits on BOTH shards before the finale.
	// Adaptive: wait until each shard acknowledges a few commits beyond
	// its pre-calm version, however long the recovery took to settle.
	healAndRestartAll("calm")
	var preCalm [recoveryShards]uint64
	mu.Lock()
	for i := range preCalm {
		preCalm[i] = ackedVer[i]
	}
	mu.Unlock()
	calmDeadline := time.Now().Add(30 * time.Second)
	for {
		settled := true
		mu.Lock()
		for i := range preCalm {
			if ackedVer[i] < preCalm[i]+3 {
				settled = false
			}
		}
		mu.Unlock()
		if settled {
			break
		}
		if time.Now().After(calmDeadline) {
			t.Fatalf("writers never committed against the recovered session (seed %d)", seed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stopWrite)
	waitOr(&writers, "writers")

	// Deterministic finale: crash the off-root shard master (and kill an
	// interior rank) once more, so every seed — whatever its random
	// schedule did — exercises a master cold restore from disk with the
	// ledger frozen.
	if s.Alive(masters[1]) {
		if err := ch.Crash(masters[1]); err != nil {
			t.Fatal(err)
		}
		ch.Sever(masters[1])
	}
	if s.Alive(3) {
		if err := s.Kill(3); err != nil {
			t.Fatal(err)
		}
	}
	healAndRestartAll("finale")

	// Verification. Per shard: the session commits again (liveness), the
	// version never regressed below the highest ack, and every acked
	// key reads back at least its acked value (safety).
	h := s.Handle(0)
	defer h.Close()
	for sh := 0; sh < recoveryShards; sh++ {
		c := NewClientFor(h, ShardService(sh))
		mu.Lock()
		wantVer := ackedVer[sh]
		want := make(map[string]int, len(acked[sh]))
		for k, v := range acked[sh] {
			want[k] = v
		}
		mu.Unlock()
		t.Logf("shard %d: %d acked keys, acked version %d", sh, len(want), wantVer)

		if err := c.Put(recoveryPrefix(sh)+".final", "done"); err != nil {
			t.Fatalf("shard %d final put: %v (seed %d)", sh, err, seed)
		}
		finalVer, err := c.Commit()
		if err != nil {
			t.Fatalf("shard %d cannot commit after recovery: %v (seed %d)", sh, err, seed)
		}
		if finalVer < wantVer {
			t.Fatalf("shard %d: version regressed to %d, acked %d (seed %d)", sh, finalVer, wantVer, seed)
		}
		waitDeadline := time.Now().Add(30 * time.Second)
		for {
			if err := c.WaitVersion(wantVer); err == nil {
				break
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("shard %d never reached acked version %d (seed %d)", sh, wantVer, seed)
			}
			time.Sleep(50 * time.Millisecond)
		}
		for key, val := range want {
			var got int
			if err := c.Get(key, &got); err != nil {
				t.Fatalf("shard %d: acked key %s lost: %v (seed %d)", sh, key, err, seed)
			}
			if got < val {
				t.Fatalf("shard %d: %s = %d after recovery, acked %d (seed %d)", sh, key, got, val, seed)
			}
		}
	}

	// The restarted off-root master must have cold-loaded real state.
	mu.Lock()
	shard1Acked := len(acked[1])
	mu.Unlock()
	if shard1Acked > 0 {
		resp, err := h.RPC(ShardService(1)+".storage", uint32(masters[1]), struct{}{})
		if err != nil {
			t.Fatalf("storage stats at restarted master: %v (seed %d)", err, seed)
		}
		var st struct {
			Storage struct {
				RecoveredObjects uint64 `json:"RecoveredObjects"`
			} `json:"storage"`
		}
		if err := resp.UnpackJSON(&st); err != nil {
			t.Fatal(err)
		}
		if st.Storage.RecoveredObjects == 0 {
			t.Fatalf("restarted master recovered 0 objects with %d acked shard-1 keys (seed %d)", shard1Acked, seed)
		}
	}
}
