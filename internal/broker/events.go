package broker

import (
	"encoding/json"
	"fmt"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// Event plane.
//
// The root broker assigns every published event a monotone sequence
// number and fans it out over the event-plane tree. Reliable FIFO links
// preserve the total order at every rank, which is what gives the KVS
// its monotonic-read consistency "for free" (paper, Sec. IV-B). Brokers
// cache recent events so a re-parented child can resync without gaps.

// pubBody is the payload of a cmb.pub request: the event to publish.
type pubBody struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
}

// builtinRequest serves the broker's own "cmb" service. It returns false
// when the method must continue upstream instead (publication below the
// root). Handlers run on the broker loop and must not block.
func (b *Broker) builtinRequest(m *wire.Message) bool {
	switch m.Method() {
	case "pub":
		if !b.IsRoot() {
			return false // forward toward the root, which sequences it
		}
		var body pubBody
		if err := m.UnpackJSON(&body); err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return true
		}
		seq := b.sequenceEvent(body.Topic, body.Payload, m.TraceID, m.Hops)
		if m.Seq != 0 {
			resp, err := wire.NewResponse(m, map[string]uint64{"seq": seq})
			if err == nil {
				b.routeResponse(inbound{msg: resp})
			}
		}
		return true
	case "ping":
		var body map[string]any
		if err := m.UnpackJSON(&body); err != nil {
			body = map[string]any{}
		}
		body["rank"] = b.cfg.Rank
		body["hops"] = len(m.Route)
		resp, err := wire.NewResponse(m, body)
		if err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return true
		}
		b.routeResponse(inbound{msg: resp})
		return true
	case "info":
		b.mu.Lock()
		tombs := b.view.Tombstones()
		b.mu.Unlock()
		resp, err := wire.NewResponse(m, map[string]any{
			"rank":       b.cfg.Rank,
			"size":       b.RankSpace(),
			"live":       b.LiveSize(),
			"epoch":      int(b.Epoch()),
			"arity":      b.cfg.Arity,
			"parent":     b.ParentRank(),
			"tombstones": tombs,
		})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	case "stats":
		st := b.Stats()
		resp, err := wire.NewResponse(m, map[string]any{
			"rank":              b.cfg.Rank,
			"requests_routed":   st.RequestsRouted,
			"requests_upstream": st.RequestsUpstream,
			"requests_ring":     st.RequestsRing,
			"responses_routed":  st.ResponsesRouted,
			"events_published":  st.EventsPublished,
			"events_applied":    st.EventsApplied,
			"events_duplicate":  st.EventsDuplicate,
			"event_seq_gaps":    st.EventSeqGaps,
			"reparents":         st.Reparents,
			"send_errors":       st.SendErrors,
			"inflight_failed":   st.InflightFailed,
			"epoch":             b.Epoch(),
			"live_size":         b.LiveSize(),
			"joins":             st.Joins,
			"leaves":            st.Leaves,
			"drains":            st.Drains,
			"epoch_rejects":     st.EpochRejects,
			"last_event_seq":    b.LastEventSeq(),
			"trace_spans":       b.traces.Len(),
			"metrics":           b.metrics.Snapshot(),
		})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	case "trace":
		var body traceBody
		if len(m.Payload) > 0 {
			if err := m.UnpackJSON(&body); err != nil {
				b.respondErr(m, ErrnoInval, err.Error())
				return true
			}
		}
		if body.Gather {
			// The session-wide gather issues RPCs and must not block the
			// loop; Shutdown waits for it through b.bg (like rmmod).
			b.bg.Add(1)
			go func() {
				defer b.bg.Done()
				b.respondTrace(m, b.gatherTrace(body))
			}()
			return true
		}
		b.respondTrace(m, b.localTrace(body))
		return true
	case "dmesg":
		b.serveDmesg(m)
		return true
	case "logfwd":
		b.serveLogFwd(m)
		return true
	case "dump":
		b.serveDump(m)
		return true
	case "rmmod":
		var body struct {
			Name string `json:"name"`
		}
		if err := m.UnpackJSON(&body); err != nil || body.Name == "" {
			b.respondErr(m, ErrnoInval, "cmb: rmmod needs a module name")
			return true
		}
		// Unloading drains the module and may need the broker loop to
		// route its in-flight responses, so it must not run on the loop.
		// Shutdown waits for it through b.bg.
		b.bg.Add(1)
		go func() {
			defer b.bg.Done()
			if err := b.UnloadModule(body.Name); err != nil {
				b.respondErr(m, ErrnoNoEnt, err.Error())
				return
			}
			if resp, err := wire.NewResponse(m, map[string]string{"unloaded": body.Name}); err == nil {
				b.routeResponse(inbound{msg: resp})
			}
		}()
		return true
	case "join":
		b.serveJoin(m)
		return true
	case "grow":
		b.serveGrow(m)
		return true
	case "shrink":
		b.serveShrink(m)
		return true
	case "restart":
		b.serveRestart(m)
		return true
	case "lsmod":
		b.mu.Lock()
		names := make([]string, 0, len(b.modules))
		for name := range b.modules {
			names = append(names, name)
		}
		b.mu.Unlock()
		resp, err := wire.NewResponse(m, map[string][]string{"modules": names})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	default:
		b.respondErr(m, ErrnoNoSys, fmt.Sprintf("cmb: unknown method %q", m.Method()))
		return true
	}
}

// sequenceEvent (root only) assigns the next sequence number and
// distributes the event session-wide. It returns the assigned sequence.
// The event inherits the publishing request's trace context (or starts
// a fresh trace for broker-internal publications), so an event's
// session-wide fan-out chains onto the cmb.pub request that caused it.
func (b *Broker) sequenceEvent(topic string, payload json.RawMessage, traceID uint64, hops uint8) uint64 {
	b.mu.Lock()
	b.eventSeq++
	seq := b.eventSeq
	b.mu.Unlock()
	b.ctr.eventsPublished.Inc()
	if traceID == 0 {
		traceID = b.newTraceID()
	}
	ev := &wire.Message{Type: wire.Event, Topic: topic, Seq: seq, Payload: payload,
		Epoch: b.epoch.Load(), TraceID: traceID, Parent: hops, Hops: hops}
	b.applyEvent(ev)
	return seq
}

// applyEvent delivers an event locally in sequence order and forwards it
// down the event-plane tree. Duplicates (possible after a resync) are
// dropped by sequence number, preserving exactly-once, in-order apply.
//
// An event message is shared by every recipient and forwarded child, so
// unlike requests its trace context is never advanced in place: the
// per-rank span derives its hop number from the rank's static tree
// depth (events only ever flow root-to-leaves), continuing the
// publisher's hop numbering without mutation.
func (b *Broker) applyEvent(ev *wire.Message) {
	start := time.Now()
	b.mu.Lock()
	if ev.Seq <= b.lastEventSeq {
		b.mu.Unlock()
		b.ctr.eventsDuplicate.Inc()
		return
	}
	if ev.Seq != b.lastEventSeq+1 && b.lastEventSeq != 0 {
		b.ctr.eventSeqGaps.Inc()
		// The gap may have swallowed a membership event; anti-entropy
		// re-fetches the authoritative view from the root.
		b.startMembershipSync()
	}
	b.lastEventSeq = ev.Seq
	// Membership events are folded while the sequencing lock is held, so
	// every broker applies the same view changes in the same total order.
	if ev.Topic == wire.EventJoin || ev.Topic == wire.EventLeave {
		b.applyMembershipLocked(ev)
	}
	b.eventHist = append(b.eventHist, ev)
	if over := len(b.eventHist) - b.cfg.EventHistory; over > 0 {
		b.eventHist = append([]*wire.Message(nil), b.eventHist[over:]...)
	}
	// Every broker applies every event, so the session heartbeat doubles
	// as the log plane's clock: each pulse flushes pending warn+ records
	// one hop upstream (after the lock below is released).
	heartbeat := ev.Topic == wire.EventHeartbeat

	// Snapshot recipients under the lock; deliver outside it.
	var mods []*moduleRunner
	for _, r := range b.modules {
		for _, p := range r.subs {
			if matchTopic(p, ev.Topic) {
				mods = append(mods, r)
				break
			}
		}
	}
	var local []*link
	var down []*link
	for _, l := range b.links {
		switch l.kind {
		case linkHandle:
			if l.h.wantsEvent(ev.Topic) {
				local = append(local, l)
			}
		case LinkClient:
			for _, p := range l.subs {
				if matchTopic(p, ev.Topic) {
					local = append(local, l)
					break
				}
			}
		case LinkChildEvent:
			if !l.gated {
				down = append(down, l)
			}
		}
	}
	b.mu.Unlock()

	b.ctr.eventsApplied.Inc()
	if heartbeat {
		b.maybeForwardLogs()
	}

	// Events are immutable once published: the same message value is
	// shared by every local recipient and forwarded child.
	for _, r := range mods {
		r.inbox.Push(ev)
	}
	for _, l := range local {
		b.send(l, ev)
	}
	for _, l := range down {
		b.send(l, ev)
	}

	work := time.Since(start)
	b.hist.applyEvent.Observe(work)
	if ev.TraceID != 0 {
		hop := int(ev.Hops) + b.depth + 1
		if hop > 255 {
			hop = 255
		}
		b.traces.Append(obs.Span{
			Trace: ev.TraceID, Rank: b.cfg.Rank, Hop: uint8(hop), Parent: uint8(hop - 1),
			Kind: "event", Topic: ev.Topic,
			Link:   fmt.Sprintf("down:%d local:%d", len(down), len(mods)+len(local)),
			WorkNS: int64(work), StartNS: start.UnixNano(),
		})
	}
}

// replayEvents sends cached events with sequence > last down one link,
// bringing a newly adopted child up to date after re-parenting.
func (b *Broker) replayEvents(l *link, last uint64) {
	b.mu.Lock()
	var replay []*wire.Message
	for _, ev := range b.eventHist {
		if ev.Seq > last {
			replay = append(replay, ev)
		}
	}
	b.mu.Unlock()
	for _, ev := range replay {
		b.send(l, ev)
	}
}

// LastEventSeq returns the sequence number of the most recently applied
// event at this broker.
func (b *Broker) LastEventSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastEventSeq
}
