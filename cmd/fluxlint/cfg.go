package main

// Per-function control-flow graphs lowered from go/ast, the substrate
// the flow-sensitive passes share. The lowering is syntactic and
// deliberately small: every compound statement contributes a head op
// (the part of it the machine evaluates before choosing a successor —
// an if condition, a switch tag, a select park) and its nested blocks
// become CFG blocks of their own. Simple statements stay whole as ops.
//
// Edges modeled: if/else, for (cond and cond-less), range, switch and
// type switch (with fallthrough and implicit no-default exit), select
// (no head→after edge without a default: the statement blocks), break
// and continue with labels, goto, return→exit, and panic→exit. Defers
// are kept in source order on the graph for passes that reason about
// function exit. Code made unreachable by a terminating statement stays
// in the graph as blocks with no path from entry; passes walk only
// reachable blocks.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

type opKind uint8

const (
	opStmt       opKind = iota // a simple statement, executed whole
	opIf                       // *ast.IfStmt: the condition
	opFor                      // *ast.ForStmt: the condition
	opRange                    // *ast.RangeStmt: next element
	opSwitch                   // *ast.SwitchStmt: the tag
	opTypeSwitch               // *ast.TypeSwitchStmt: the assign
	opSelect                   // *ast.SelectStmt: the park point
	opCase                     // *ast.CaseClause: the case expressions
	opComm                     // *ast.CommClause: the comm operation
)

// op is one evaluation step inside a block.
type op struct {
	kind opKind
	node ast.Node
}

// headNodes returns the sub-nodes this op itself evaluates. Nested
// statement blocks are excluded — they are separate CFG blocks — so a
// pass that inspects every op's head nodes over all reachable blocks
// sees each expression exactly once.
func (o op) headNodes() []ast.Node {
	var out []ast.Node
	add := func(n ast.Node) {
		if n != nil && !isNilNode(n) {
			out = append(out, n)
		}
	}
	switch n := o.node.(type) {
	case *ast.IfStmt:
		add(n.Cond)
	case *ast.ForStmt:
		add(n.Cond)
	case *ast.RangeStmt:
		add(n.Key)
		add(n.Value)
		add(n.X)
	case *ast.SwitchStmt:
		add(n.Tag)
	case *ast.TypeSwitchStmt:
		add(n.Assign)
	case *ast.SelectStmt:
		// The park point itself; the comm ops are opComm heads.
	case *ast.CaseClause:
		for _, e := range n.List {
			add(e)
		}
	case *ast.CommClause:
		add(n.Comm)
	default:
		add(o.node)
	}
	return out
}

// isNilNode guards against typed-nil ast.Expr values inside interfaces.
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return false
}

// block is a straight-line op sequence with branch-free interior.
type block struct {
	index int
	kind  string // entry, exit, if.then, for.body, ... (golden tests)
	ops   []op
	succs []*block
	preds []*block
}

// funcCFG is the graph of one function body.
type funcCFG struct {
	body   *ast.BlockStmt
	entry  *block
	exit   *block
	blocks []*block // in creation order; blocks[i].index == i
	defers []*ast.DeferStmt
}

// reachable returns the set of blocks reachable from entry.
func (g *funcCFG) reachable() map[*block]bool {
	seen := map[*block]bool{g.entry: true}
	work := []*block{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// buildCFG lowers one function body. The graph always has entry as
// block 0 and exit as block 1.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{body: body}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock("entry")
	g.exit = b.newBlock("exit")
	b.cur = g.entry
	b.stmts(body.List)
	b.link(b.cur, g.exit) // implicit return at the closing brace
	return g
}

// ctrlFrame is one enclosing breakable construct during lowering.
type ctrlFrame struct {
	label      string
	isLoop     bool
	breakTo    *block
	continueTo *block // loops only
}

type cfgBuilder struct {
	g            *funcCFG
	cur          *block
	frames       []ctrlFrame
	labels       map[string]*block
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *block {
	blk := &block{index: len(b.g.blocks), kind: kind}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *block) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// terminate parks the builder on a fresh predecessor-less block, so
// statements after a return/branch lower into unreachable blocks.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) emit(kind opKind, n ast.Node) {
	b.cur.ops = append(b.cur.ops, op{kind: kind, node: n})
}

// takeLabel consumes the pending label for a labeled loop/switch.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *block {
	if b.labels == nil {
		b.labels = map[string]*block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if _, ok := s.(*ast.LabeledStmt); !ok {
		defer func() { b.pendingLabel = "" }()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.EmptyStmt:

	case *ast.LabeledStmt:
		lbl := b.labelBlock(s.Label.Name)
		b.link(b.cur, lbl)
		b.cur = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(opIf, s)
		head := b.cur
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		b.link(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.link(b.cur, after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.link(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, after)
		} else {
			b.link(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.link(b.cur, head)
		head.ops = append(head.ops, op{kind: opFor, node: s})
		bodyB := b.newBlock("for.body")
		after := b.newBlock("for.after")
		b.link(head, bodyB)
		if s.Cond != nil {
			b.link(head, after)
		}
		contTo := head
		var post *block
		if s.Post != nil {
			post = b.newBlock("for.post")
			contTo = post
		}
		b.frames = append(b.frames, ctrlFrame{label: label, isLoop: true, breakTo: after, continueTo: contTo})
		b.cur = bodyB
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.link(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.link(b.cur, head)
		} else {
			b.link(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.link(b.cur, head)
		head.ops = append(head.ops, op{kind: opRange, node: s})
		bodyB := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.link(head, bodyB)
		b.link(head, after)
		b.frames = append(b.frames, ctrlFrame{label: label, isLoop: true, breakTo: after, continueTo: head})
		b.cur = bodyB
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.link(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(opSwitch, s)
		b.switchClauses(label, b.cur, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(opTypeSwitch, s)
		b.switchClauses(label, b.cur, s.Body, "typeswitch")

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.emit(opSelect, s)
		head := b.cur
		after := b.newBlock("select.after")
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			kind := "select.comm"
			if cc.Comm == nil {
				kind = "select.default"
			}
			cb := b.newBlock(kind)
			cb.ops = append(cb.ops, op{kind: opComm, node: cc})
			b.link(head, cb)
			b.cur = cb
			b.stmts(cc.Body)
			b.link(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// No default: the select blocks until a case fires, so there is
		// deliberately no head→after edge.
		b.cur = after

	case *ast.ReturnStmt:
		b.emit(opStmt, s)
		b.link(b.cur, b.g.exit)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if s.Label == nil || f.label == s.Label.Name {
					b.link(b.cur, f.breakTo)
					break
				}
			}
			b.terminate()
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if f.isLoop && (s.Label == nil || f.label == s.Label.Name) {
					b.link(b.cur, f.continueTo)
					break
				}
			}
			b.terminate()
		case token.GOTO:
			b.link(b.cur, b.labelBlock(s.Label.Name))
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by switchClauses; nothing to do if seen elsewhere.
		}

	case *ast.DeferStmt:
		// Arguments are evaluated at the defer site; the call runs at
		// exit. The op carries the site, defers the exit-time order.
		b.emit(opStmt, s)
		b.g.defers = append(b.g.defers, s)

	case *ast.ExprStmt:
		b.emit(opStmt, s)
		if isPanicCall(s.X) {
			b.link(b.cur, b.g.exit)
			b.terminate()
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt:
		b.emit(opStmt, s)

	default:
		b.emit(opStmt, s)
	}
}

// switchClauses lowers the clause list shared by switch/type switch:
// head already carries the tag op; each clause gets a case-head block,
// a fallthrough edge to the next clause body, and a break target after.
func (b *cfgBuilder) switchClauses(label string, head *block, body *ast.BlockStmt, prefix string) {
	after := b.newBlock(prefix + ".after")
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
	hasDefault := false
	var caseBlocks []*block
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		kind := prefix + ".case"
		if cc.List == nil {
			kind = prefix + ".default"
			hasDefault = true
		}
		cb := b.newBlock(kind)
		cb.ops = append(cb.ops, op{kind: opCase, node: cc})
		b.link(head, cb)
		caseBlocks = append(caseBlocks, cb)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmts(stmts)
		if fallsThrough && i+1 < len(caseBlocks) {
			b.link(b.cur, caseBlocks[i+1])
		} else {
			b.link(b.cur, after)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// isPanicCall recognizes a direct call of the panic builtin. The check
// is syntactic (a shadowing local named panic would fool it) — fine for
// a linter that only uses it to cut unreachable paths.
func isPanicCall(e ast.Expr) bool {
	ce, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ce.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// dump renders the graph for golden tests: one line per block in index
// order, ops abbreviated, unreachable blocks marked.
func (g *funcCFG) dump(fset *token.FileSet) string {
	reach := g.reachable()
	var sb strings.Builder
	for _, blk := range g.blocks {
		if blk.kind == "unreachable" && len(blk.ops) == 0 && len(blk.succs) == 0 {
			continue // builder parking lot with no content
		}
		fmt.Fprintf(&sb, "b%d %s:", blk.index, blk.kind)
		if !reach[blk] && blk != g.exit {
			sb.WriteString(" (unreachable)")
		}
		for _, o := range blk.ops {
			fmt.Fprintf(&sb, " [%s]", o.describe(fset))
		}
		if len(blk.succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.succs {
				fmt.Fprintf(&sb, " b%d", s.index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

var opKindNames = [...]string{
	opStmt: "stmt", opIf: "if", opFor: "for", opRange: "range",
	opSwitch: "switch", opTypeSwitch: "typeswitch", opSelect: "select",
	opCase: "case", opComm: "comm",
}

func (o op) describe(fset *token.FileSet) string {
	name := opKindNames[o.kind]
	var snippet ast.Node
	switch n := o.node.(type) {
	case *ast.IfStmt:
		snippet = n.Cond
	case *ast.ForStmt:
		snippet = n.Cond
	case *ast.SwitchStmt:
		snippet = n.Tag
	case *ast.CaseClause:
		if len(n.List) > 0 {
			snippet = n.List[0]
		}
	case *ast.CommClause:
		snippet = n.Comm
	case *ast.RangeStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		snippet = o.node
	}
	if snippet == nil || isNilNode(snippet) {
		return name
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, snippet); err != nil {
		return name
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return name + " " + s
}
