// Package client provides external-program access to a CMB broker over
// TCP — the transport the paper's flux utility uses (a UNIX socket
// there, an authenticated TCP connection here). It mirrors the
// in-process Handle API: RPCs with match-tag demultiplexing, and event
// subscriptions maintained broker-side via cmb.sub control messages.
package client

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// ErrClosed is returned after the connection has shut down.
var ErrClosed = errors.New("client: connection closed")

// DefaultRPCTimeout bounds RPCs issued without a caller deadline, so an
// external tool never hangs on a wedged or partitioned broker. It
// mirrors broker.DefaultRPCTimeout.
const DefaultRPCTimeout = 60 * time.Second

// errnoTimedOut aliases the wire-level ETIMEDOUT, so callers can
// classify client-side and broker-side deadline errors uniformly with
// wire.IsErrnum.
const errnoTimedOut = wire.ErrnoTimedOut

// Client is a connection to one broker.
type Client struct {
	conn    transport.Conn
	nextTag atomic.Uint64

	// Timeout bounds each RPC whose context carries no deadline of its
	// own. Zero means DefaultRPCTimeout; negative disables the bound.
	Timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan *wire.Message
	subs    map[*Subscription]bool
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects and authenticates to a broker at addr.
func Dial(addr string, key []byte) (*Client, error) {
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	id := "client:" + hex.EncodeToString(nonce[:])
	conn, err := transport.Dial(addr, key, id)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan *wire.Message{},
		subs:    map[*Subscription]bool{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			if err != io.EOF {
				c.readErr = err
			}
			for tag, ch := range c.pending {
				close(ch)
				delete(c.pending, tag)
			}
			for s := range c.subs {
				close(s.ch)
				delete(c.subs, s)
			}
			c.mu.Unlock()
			return
		}
		switch m.Type {
		case wire.Response:
			c.mu.Lock()
			ch, ok := c.pending[m.Seq]
			if ok {
				delete(c.pending, m.Seq)
			}
			c.mu.Unlock()
			if ok {
				ch <- m
			}
		case wire.Event:
			c.mu.Lock()
			for s := range c.subs {
				if matchTopic(s.prefix, m.Topic) {
					select {
					case s.ch <- m:
					default: // slow subscriber: drop rather than stall the link
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// matchTopic mirrors the broker's hierarchical prefix rule.
func matchTopic(prefix, topic string) bool {
	if prefix == "" {
		return true
	}
	if len(topic) < len(prefix) || topic[:len(prefix)] != prefix {
		return false
	}
	return len(topic) == len(prefix) || topic[len(prefix)] == '.'
}

// RPC sends a request and waits for the matching response.
func (c *Client) RPC(topic string, nodeid uint32, body any) (*wire.Message, error) {
	return c.RPCContext(context.Background(), topic, nodeid, body)
}

// RPCContext is RPC with cancellation. When ctx carries no deadline,
// the client's Timeout applies.
func (c *Client) RPCContext(ctx context.Context, topic string, nodeid uint32, body any) (*wire.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultRPCTimeout
	}
	ownDeadline := false
	if _, has := ctx.Deadline(); !has && timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
		ownDeadline = true
	}
	m, err := wire.NewRequest(topic, nodeid, body)
	if err != nil {
		return nil, err
	}
	tag := c.nextTag.Add(1)
	m.Seq = tag
	ch := make(chan *wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[tag] = ch
	c.mu.Unlock()
	if err := c.conn.Send(m); err != nil {
		c.forget(tag)
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.closeErr()
		}
		if err := wire.ResponseError(resp); err != nil {
			return resp, err
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(tag)
		if ownDeadline && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, &wire.RPCError{Topic: topic, Errnum: errnoTimedOut,
				Msg: fmt.Sprintf("rpc deadline (%s) exceeded", timeout)}
		}
		return nil, ctx.Err()
	}
}

func (c *Client) forget(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

func (c *Client) closeErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClosed
}

// Subscription is a client-side event stream.
type Subscription struct {
	c      *Client
	prefix string
	ch     chan *wire.Message
	once   sync.Once
}

// Chan returns the event channel. Slow consumers may drop events.
func (s *Subscription) Chan() <-chan *wire.Message { return s.ch }

// Close cancels the subscription broker-side and locally.
func (s *Subscription) Close() {
	s.once.Do(func() {
		un := &wire.Message{Type: wire.Control, Topic: wire.TopicUnsub}
		un.PackJSON(map[string]string{"prefix": s.prefix})
		//fluxlint:ignore errno-discipline best-effort unsubscribe on teardown; a failed send means the conn is closing, which unsubscribes anyway
		s.c.conn.Send(un)
		s.c.mu.Lock()
		if s.c.subs[s] {
			delete(s.c.subs, s)
			close(s.ch)
		}
		s.c.mu.Unlock()
	})
}

// Subscribe registers interest in events matching prefix.
func (c *Client) Subscribe(prefix string) (*Subscription, error) {
	s := &Subscription{c: c, prefix: prefix, ch: make(chan *wire.Message, 256)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.subs[s] = true
	c.mu.Unlock()
	sub := &wire.Message{Type: wire.Control, Topic: wire.TopicSub}
	if err := sub.PackJSON(map[string]string{"prefix": prefix}); err != nil {
		return nil, err
	}
	if err := c.conn.Send(sub); err != nil {
		return nil, fmt.Errorf("client: subscribe: %w", err)
	}
	return s, nil
}

// Close tears the connection down.
func (c *Client) Close() {
	c.conn.Close()
	<-c.done
}
