package obs

import "testing"

// BenchmarkLogAppend is the log plane's hot-path cost: one formatted
// record through the Logger into the ring.
func BenchmarkLogAppend(b *testing.B) {
	l := NewLogger(NewLogRing(DefaultLogRecords, 1), 3)
	l.SetEpochFn(func() uint32 { return 2 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Warnf("bench", "record %d of %d", i, b.N)
	}
}

// BenchmarkLogDisabled is the gate cost of a below-verbosity call — the
// price a hot path pays for a debug line that is off. Formatting args
// are built behind an Enabled check (the pattern for hot paths; a bare
// Debugf with args still pays vararg boxing at the call site), so the
// whole thing must stay allocation-free.
func BenchmarkLogDisabled(b *testing.B) {
	l := NewLogger(NewLogRing(DefaultLogRecords, 1), 3)
	l.SetVerbosity(LevelWarn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debugf("bench", "static record")
		if l.Enabled(LevelDebug) {
			l.Debugf("bench", "record %d of %d", i, b.N)
		}
	}
}

// BenchmarkLogSnapshot measures a filtered ring snapshot over a full
// ring — what a heartbeat flush or dmesg query costs the origin.
func BenchmarkLogSnapshot(b *testing.B) {
	r := NewLogRing(DefaultLogRecords, 1)
	for i := 0; i < DefaultLogRecords; i++ {
		lvl := LevelDebug
		if i%8 == 0 {
			lvl = LevelWarn
		}
		r.Append(Record{TimeNS: int64(i + 1), Level: lvl, Msg: "x"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot(LogFilter{MaxLevel: LevelWarn})
	}
}
