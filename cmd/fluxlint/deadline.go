package main

// deadline-propagation: a function that receives a context.Context must
// thread it into the RPCs it issues. A bare h.RPC(...) call inside such
// a function silently substitutes context.Background() for the caller's
// deadline (that is exactly what RPC does), so cancellation stops
// propagating at that hop and the no-hang guarantee degrades to the
// default timeout; passing context.Background() or context.TODO() to
// RPCContext/RPCWithOptions is the same bug spelled explicitly. Both
// shapes are flagged anywhere reachable inside the function, including
// closures nested in it (the parameter is in scope there too); code cut
// off by return/panic is not reported.
//
// Functions without a context parameter are exempt: bare RPC is the
// sanctioned blocking call when no caller deadline exists to propagate.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const deadlinePropagationName = "deadline-propagation"

var deadlinePropagationPass = Pass{
	Name: deadlinePropagationName,
	Doc:  "flag RPCs that drop an in-scope context.Context",
	Run:  runDeadlinePropagation,
}

// deadlineFamily are the round-trip calls subject to the rule: RPC
// never takes a context; the other two take it as their first argument.
var deadlineFamily = map[string]bool{
	"RPC":            true,
	"RPCContext":     true,
	"RPCWithOptions": true,
}

func runDeadlinePropagation(l *Loader, p *Package) []Finding {
	c := &deadlineChecker{l: l, p: p, ix: indexOf(p), covered: map[*ast.BlockStmt]bool{}}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && hasCtxParam(p, n.Type) {
					c.checkBody(n.Body)
				}
			case *ast.FuncLit:
				if hasCtxParam(p, n.Type) {
					c.checkBody(n.Body)
				}
			}
			return true
		})
	}
	return c.findings
}

type deadlineChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	covered  map[*ast.BlockStmt]bool
	findings []Finding
}

func (c *deadlineChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: deadlinePropagationName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// checkBody flags deadline-dropping RPCs on the reachable paths of
// body's CFG, recursing into nested function literals (where the
// context parameter is still in scope). The covered set keeps a
// closure checked through its enclosing function from being reported
// twice when it declares a context parameter of its own.
func (c *deadlineChecker) checkBody(body *ast.BlockStmt) {
	if c.covered[body] {
		return
	}
	c.covered[body] = true
	g := c.ix.cfgOf(body)
	reach := g.reachable()
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		for _, o := range blk.ops {
			for _, h := range o.headNodes() {
				inspectHead(h, func(n ast.Node) bool {
					if ce, ok := n.(*ast.CallExpr); ok {
						c.checkCall(ce)
					}
					return true
				})
				for _, fl := range funcLitsIn(h) {
					c.checkBody(fl.Body)
				}
			}
		}
	}
}

func (c *deadlineChecker) checkCall(ce *ast.CallExpr) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || !deadlineFamily[se.Sel.Name] || c.p.Info.Selections[se] == nil {
		return
	}
	switch se.Sel.Name {
	case "RPC":
		c.report(ce.Pos(),
			"RPC drops the in-scope context; use RPCContext(ctx, ...)")
	default:
		if len(ce.Args) > 0 && isFreshContext(c.p, ce.Args[0]) {
			c.report(ce.Args[0].Pos(),
				"%s given a fresh context while the caller's is in scope", se.Sel.Name)
		}
	}
}

// hasCtxParam reports whether ft declares a context.Context parameter.
func hasCtxParam(p *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := p.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// isFreshContext reports whether e is a context.Background() or
// context.TODO() call.
func isFreshContext(p *Package, e ast.Expr) bool {
	ce, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || (se.Sel.Name != "Background" && se.Sel.Name != "TODO") {
		return false
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "context"
}
