// Package broker implements the Comms Message Broker (CMB), the
// per-node daemon of a Flux comms session.
//
// Exactly as in the paper's prototype, each broker participates in three
// persistent overlay planes: an event plane (publish/subscribe with
// guaranteed, totally ordered delivery — the paper's PGM bus, realized
// here as a root-sequenced tree broadcast), a request/response tree for
// scalable RPCs, barriers, and reductions (requests are routed "upstream"
// to the first comms module matching the topic, responses retrace the
// same hops in reverse), and a secondary rank-addressed overlay with ring
// topology that lets any rank be reached without routing tables.
//
// Comms modules — the paper's loadable service plugins (kvs, barrier,
// wexec, ...) — are loaded into the broker's address space and exchange
// messages with it through in-memory mailboxes. Local programs attach
// through Handles, the analogue of the flux utility's socket connection.
package broker

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
	"fluxgo/internal/obs"
	"fluxgo/internal/topo"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// Errno values used in CMB error responses. The canonical table lives
// in the wire package (they are protocol constants); these aliases keep
// the broker API ergonomic for modules.
const (
	ErrnoNoEnt       = wire.ErrnoNoEnt
	ErrnoIO          = wire.ErrnoIO
	ErrnoInval       = wire.ErrnoInval
	ErrnoNoSys       = wire.ErrnoNoSys
	ErrnoProto       = wire.ErrnoProto
	ErrnoShutdown    = wire.ErrnoShutdown
	ErrnoTimedOut    = wire.ErrnoTimedOut
	ErrnoHostUnreach = wire.ErrnoHostUnreach
	ErrnoStale       = wire.ErrnoStale
)

// LinkKind classifies a broker attachment to one of the overlay planes.
type LinkKind int

// Link kinds.
const (
	LinkParentTree  LinkKind = iota + 1 // request plane, toward root
	LinkParentEvent                     // event plane, toward root
	LinkChildTree                       // request plane, toward leaves
	LinkChildEvent                      // event plane, toward leaves
	LinkRingOut                         // rank-addressed plane, to next rank
	LinkRingIn                          // rank-addressed plane, from prev rank
	LinkClient                          // external client connection
	linkHandle                          // in-process Handle
)

func (k LinkKind) prefix() string {
	switch k {
	case LinkParentTree, LinkChildTree:
		return "t:"
	case LinkParentEvent, LinkChildEvent:
		return "e:"
	// Ring in and out must map to distinct ids: in a two-rank session
	// both directions have the same peer, and a shared prefix would
	// collide in the link registry, orphaning one conn at shutdown.
	case LinkRingOut:
		return "ro:"
	case LinkRingIn:
		return "ri:"
	case LinkClient:
		return "c:"
	default:
		return "h:"
	}
}

// link is one attachment: either a transport connection or a local handle.
type link struct {
	kind LinkKind
	id   string // registry id, unique within this broker
	conn transport.Conn
	h    *Handle
	subs []string // event-topic prefixes, for client links
	// gated marks a child event link that has not yet resynced: no live
	// events are forwarded on it until its cmb.resync is served, so a
	// replayed backlog can never be overtaken by a fresher event (which
	// would advance the child's sequence and make it drop the backlog as
	// duplicates).
	gated bool
	// pending marks a child tree link from a joining rank that has not
	// completed the cmb.join handshake: the membership fence admits
	// nothing but the handshake itself on it.
	pending atomic.Bool
	// minEpoch, when nonzero, is the lowest membership epoch admitted on
	// this link; it is raised to the leave epoch when the peer departs,
	// fencing out its residual traffic (see Broker.admitEpoch).
	minEpoch atomic.Uint32
}

// send delivers a message outbound on this link, reporting failure so
// the broker can account for it (see Broker.send).
func (l *link) send(m *wire.Message) error {
	if l.conn != nil {
		return l.conn.Send(m)
	}
	if l.h != nil && !l.h.deliver(m) {
		return errShutdown
	}
	return nil
}

// send delivers m on l, counting failures in Stats.SendErrors instead of
// silently discarding them. Link-down cleanup still handles the
// connection teardown itself; the counter is what makes a lossy or dying
// link observable through cmb.stats before that happens.
func (b *Broker) send(l *link, m *wire.Message) {
	if err := l.send(m); err != nil {
		b.ctr.sendErrors.Inc()
		b.log.Warnf(wire.ServiceCMB, "send on link %s failed: %v", l.id, err)
	}
}

// sendHandoff is send for the single-destination routing paths: when l
// is a transport link, the message is armed so the link's writer
// recycles it (and its receive buffer) after encoding. The caller must
// not touch m afterwards. Messages fanned out to several links (events)
// or delivered to local handles are never armed: for them this
// degenerates to send, and they are garbage-collected as before.
func (b *Broker) sendHandoff(l *link, m *wire.Message) {
	b.sendHandoffErr(l, m)
}

// sendHandoffErr is sendHandoff reporting the send error instead of
// only counting it: the tracked forwarding paths need the failure to
// settle the in-flight entry they just created. The caller must not
// touch m afterwards.
func (b *Broker) sendHandoffErr(l *link, m *wire.Message) error {
	if l.conn != nil {
		m.Handoff()
	}
	err := l.send(m)
	if err != nil {
		b.ctr.sendErrors.Inc()
		b.log.Warnf(wire.ServiceCMB, "send on link %s failed: %v", l.id, err)
	}
	return err
}

// inbound is one unit of work for the broker loop.
type inbound struct {
	msg  *wire.Message
	from *link // arrival link; nil for broker-internal submissions
	// enq is when the message entered the broker inbox; the loop's
	// pickup delay against it is the queue-wait recorded in trace spans
	// and the cmb.request_queue_ns histogram. Zero for loop-internal
	// submissions, which never queue.
	enq time.Time
	// forceUp requests upstream forwarding without local module matching
	// (used by modules re-forwarding a request toward the root).
	forceUp bool
	// ctl carries loop-internal commands (attach, link down, shutdown).
	ctl func()
}

// Config parameterizes a Broker.
type Config struct {
	Rank  int
	Size  int
	Arity int // tree fan-out; 0 defaults to 2 (the paper's binary tree)
	Clock clock.Clock
	// EventHistory is how many recent events are cached for resync after
	// re-parenting; 0 defaults to 1024.
	EventHistory int
	// Reparent, when non-nil, is invoked (on its own goroutine) after the
	// parent links fail, giving the session a chance to re-wire this
	// broker to a new parent. It implements the paper's "self-heal when
	// interior nodes fail".
	Reparent func(b *Broker, oldParentRank int)
	// Log, when non-nil, receives broker diagnostics.
	Log func(format string, args ...any)
	// RPCTimeout is the default deadline applied to Handle RPCs that do
	// not specify their own. 0 defaults to DefaultRPCTimeout; negative
	// disables the default deadline entirely (callers may still pass one
	// per call).
	RPCTimeout time.Duration
	// TraceSpans is the capacity of the broker's trace-span ring buffer.
	// 0 defaults to obs.DefaultTraceSpans; negative disables span
	// recording entirely (the metrics registry stays on).
	TraceSpans int
	// LogRecords is the capacity of the broker's structured log ring
	// (the log plane behind flux dmesg and the flight recorder). 0
	// defaults to obs.DefaultLogRecords; negative disables buffering
	// (records still reach the Log mirror).
	LogRecords int
	// LogLevel caps the severity recorded into the log ring; 0 defaults
	// to obs.LevelDebug (record everything).
	LogLevel int
	// SessionID names the comms session for the cmb.join membership
	// handshake: a joiner presenting a different id is refused admission.
	SessionID string
	// Epoch seeds the membership epoch (0 means the founding epoch, 1).
	// Brokers added by growth are seeded with the epoch current at their
	// creation so replayed membership history is a no-op for them.
	Epoch uint32
	// Tombstones seeds the set of already-departed ranks, for brokers
	// added by growth after earlier shrinks.
	Tombstones []int
	// Joined marks a broker added by session growth after the founding
	// ranks started (see Broker.JoinedLate).
	Joined bool
	// Grow / Shrink, when non-nil, serve the cmb.grow / cmb.shrink
	// requests by adding n fresh ranks (returning the first new rank) /
	// gracefully draining the given ranks. The session installs them on
	// every broker; without them those topics answer ENOSYS.
	Grow   func(n int) (int, error)
	Shrink func(ranks []int) error
	// Restart, when non-nil, serves cmb.restart by bringing a previously
	// killed or crashed rank back through the join path, cold-loading its
	// durable state from disk. ENOSYS otherwise.
	Restart func(rank int) error
	// SyncInterval is the period of membership anti-entropy: non-root
	// brokers pull the parent's view this often, guaranteeing eventual
	// membership convergence even when every event carrying a change was
	// lost and no later traffic carries a newer epoch. 0 defaults to
	// DefaultSyncInterval; negative disables the periodic pull (the
	// gap- and epoch-triggered syncs remain).
	SyncInterval time.Duration
	// Shards is the number of route-dispatch shards (and module-mailbox
	// lanes). Messages are partitioned by flow — arrival link plus match
	// tag — so independent RPC flows route concurrently while each flow
	// stays FIFO; events, controls, and link teardown always serialize
	// on shard 0. 0 defaults to min(GOMAXPROCS, 8); 1 restores the fully
	// serialized single-loop dispatch.
	Shards int
	// BinaryBodies opts this broker's hot services (kvs.load/put,
	// barrier enter, cmb.pub) into the length-prefixed binary body codec
	// (wire.BinWriter/BinReader). Decoders always sniff, so a binary
	// broker interoperates with JSON peers; the cmb.join handshake
	// downgrades a joiner whose parent does not advertise binary bodies.
	BinaryBodies bool
}

// DefaultSyncInterval is the default membership anti-entropy period.
const DefaultSyncInterval = 2 * time.Second

// Stats are cumulative broker counters, readable at any time. They are
// a typed snapshot of the broker's obs.Registry counters (see
// Broker.Metrics for the full registry, histograms included).
type Stats struct {
	RequestsRouted   uint64 // requests entering routing
	RequestsUpstream uint64 // requests forwarded to the tree parent
	RequestsRing     uint64 // requests forwarded on the ring
	ResponsesRouted  uint64
	EventsPublished  uint64 // events sequenced at this (root) broker
	EventsApplied    uint64
	EventsDuplicate  uint64 // dropped as already-seen after resync
	EventSeqGaps     uint64
	Reparents        uint64
	SendErrors       uint64 // outbound link sends that failed (conn closed, handle gone)
	InflightFailed   uint64 // routed RPCs failed with EHOSTUNREACH on a return-route link drop
	Joins            uint64 // membership join events folded into the view
	Leaves           uint64 // membership leave events folded into the view
	Drains           uint64 // departing child ranks this broker drained
	EpochRejects     uint64 // messages refused at the membership fence
}

// counters are the broker's hot-path counters: handles into the
// registry resolved once at New so every increment is a single
// uncontended atomic add, with no broker lock involved (they used to
// live under b.mu, which serialized the routing loop against every
// Stats reader).
type counters struct {
	requestsRouted   *obs.Counter
	requestsUpstream *obs.Counter
	requestsRing     *obs.Counter
	responsesRouted  *obs.Counter
	eventsPublished  *obs.Counter
	eventsApplied    *obs.Counter
	eventsDuplicate  *obs.Counter
	eventSeqGaps     *obs.Counter
	// Encode-once fan-out: one "encode" per event whose frame was built
	// for a frame-capable child, one "reuse" per additional send served
	// from that same shared encoding (fan-out siblings and resync
	// replays). reuse/encodes is the marshals-saved ratio.
	eventsFanoutEncodes *obs.Counter
	eventsFanoutReuse   *obs.Counter
	reparents        *obs.Counter
	sendErrors       *obs.Counter
	inflightFailed   *obs.Counter
	joins            *obs.Counter
	leaves           *obs.Counter
	drains           *obs.Counter
	epochRejects     *obs.Counter

	// Silent-drop observability: each logf-only drop path also counts,
	// mirroring the epoch-discipline rule for fenced messages.
	dropsUnknownType    *obs.Counter
	dropsEmptyRoute     *obs.Counter
	dropsUnknownLink    *obs.Counter
	dropsUnknownControl *obs.Counter

	// Log plane.
	logRecords    *obs.Counter
	logForwarded  *obs.Counter
	logFwdBatches *obs.Counter
}

// hists are the broker's hot-path latency histograms.
type hists struct {
	requestQueue  *obs.Histogram // inbox wait of routed requests
	routeRequest  *obs.Histogram // routeRequest handle time
	routeResponse *obs.Histogram // routeResponse handle time
	applyEvent    *obs.Histogram // applyEvent fan-out time
}

// Broker is one CMB rank.
type Broker struct {
	cfg  Config
	tree topo.Tree
	ring topo.Ring

	// Sharded dispatch core: inbound work is partitioned by flow across
	// nshards combining-lock shards (see shard), replacing the single
	// submit -> loop() pipeline. Each shard carries its own queue,
	// worker, and slice of the in-flight table; shard 0 additionally
	// owns everything that needs the old loop's total order — events,
	// controls, and link-down cleanup.
	shards  []*shard
	nshards int

	// mu is a debuglock.Mutex so `-tags debuglock` builds verify the
	// broker's lock ordering (broker.evMu -> broker.mu -> handle.mu,
	// never reversed). It guards the authoritative registries (links,
	// modules) and cold state; the routing hot path reads the registries
	// through the lock-free snapshots below instead.
	mu    debuglock.Mutex
	links map[string]*link
	// linksSnap / modsSnap are copy-on-write snapshots of the link and
	// module registries, republished under mu at every mutation and read
	// lock-free by the dispatch shards (response forwarding, local
	// dispatch). They trade a map copy per topology change — rare — for
	// zero shared-lock traffic per routed message.
	linksSnap   atomic.Pointer[map[string]*link]
	parentTree  atomic.Pointer[link] // written under mu; read lock-free
	parentEvent atomic.Pointer[link]
	ringOut     atomic.Pointer[link]
	parentRank  int
	modules     map[string]*moduleRunner
	modsSnap    atomic.Pointer[map[string]*moduleRunner]
	closed      bool
	reparenting bool // a Reparent callback is in flight
	// view is this broker's membership view: the dynamic rank space with
	// departed ranks tombstoned. It converges across brokers by folding
	// the totally ordered live.join / live.leave events (guarded by mu;
	// epoch and space shadow its hot-path reads atomically).
	view       *topo.View
	epoch      atomic.Uint32 // current membership epoch
	space      atomic.Uint32 // current rank-space size (view.Size())
	syncing    atomic.Bool   // membership anti-entropy pull in flight
	epochGauge *obs.Gauge

	handleSeq atomic.Uint64

	// Observability plane: the metrics registry (shared with this
	// broker's comms modules via Metrics), resolved hot-path counter and
	// histogram handles, the bounded trace-span ring, and the sequence
	// for originating trace ids.
	metrics  *obs.Registry
	ctr      counters
	hist     hists
	traces   *obs.TraceBuffer
	traceSeq atomic.Uint64
	depth    int // this rank's depth in the tree (root = 0)

	// Log plane: the structured record ring and its leveled front end
	// (b.log replaces the old ad-hoc b.logf), plus the aggregation ring
	// holding warn+ records forwarded up the tree by descendants. boot
	// stamps this incarnation so records survive rank restarts
	// unambiguously. lastFwd is the forwarding cursor: the highest local
	// Seq already batched upstream.
	log     *obs.Logger
	fwd     *obs.LogRing
	boot    int64
	lastFwd atomic.Uint64
	fwding  atomic.Bool // an upstream log batch is being built

	// bg tracks loop-spawned background work (e.g. async rmmod drains)
	// so Shutdown does not return while any of it is still running.
	bg sync.WaitGroup

	// evMu serializes event sequencing/apply with backlog replay. At the
	// root, cmb.pub requests route on arbitrary shards, so without it
	// two publications could interleave their sequence assignment and
	// their fan-out sends; and a resync replay racing a live apply could
	// let the fresher event reach the just-ungated child first, making
	// it drop the whole replayed backlog as duplicates. Lock order:
	// evMu before mu, never the reverse.
	evMu debuglock.Mutex

	eventSeq     uint64     // root only: last assigned sequence number (guarded by evMu)
	lastEventSeq uint64     // last applied sequence number (guarded by mu)
	eventHist    []eventRec // recent events + shared encodings (guarded by mu)

	// binBodies mirrors Config.BinaryBodies, atomically flippable by the
	// session join handshake's downgrade path.
	binBodies atomic.Bool

	done chan struct{} // closed once every shard worker has exited
}

// BinaryBodies reports whether hot services at this broker encode
// payloads with the binary body codec.
func (b *Broker) BinaryBodies() bool { return b.binBodies.Load() }

// SetBinaryBodies flips the binary-body preference; the session join
// handshake downgrades to JSON when a peer does not advertise support.
func (b *Broker) SetBinaryBodies(on bool) { b.binBodies.Store(on) }

// shard is one dispatch lane of the broker's sharded routing core. It
// is a combining lock: a submitter that finds the shard idle — nothing
// queued, no active processor — claims the busy token and routes its
// message inline on its own goroutine, so the common uncontended hop
// pays zero scheduler wakeups; contended or backlogged submissions
// append to the queue for the shard's worker. The busy token plus the
// queue-empty check preserve strict per-shard FIFO: work is only taken
// inline when nothing is logically ahead of it, and the worker never
// runs while an inline submitter holds the token.
type shard struct {
	// proc is the dispatch function (the broker's process); the shard
	// itself is just a combining-lock executor and stays agnostic of
	// what the work units mean.
	proc   func(inbound)
	mu     sync.Mutex
	cond   *sync.Cond
	q      []inbound
	head   int // q[:head] already consumed; popped lazily to avoid per-item reslicing
	busy   bool
	closed bool

	// imu guards this shard's slice of the in-flight request table:
	// requests forwarded over an outbound link whose responses must
	// retrace through this broker. Entries live on the shard that routes
	// the flow, so the request forward, the response settle, and a
	// link-down sweep only ever contend within one flow's shard. When an
	// outbound link drops, every entry tracked over it is failed with
	// ErrnoHostUnreach back toward its requester, so no caller waits on
	// a response that can never arrive (the no-hang guarantee's fast
	// path; the RPC deadline is the backstop for silent faults).
	imu      sync.Mutex
	inflight map[string]*inflightReq
}

// run is the shard's worker: it drains the queue whenever submitters
// are not carrying the work inline, and exits once the shard is closed,
// drained, and idle.
func (s *shard) run() {
	s.mu.Lock()
	for {
		for {
			if s.head < len(s.q) && !s.busy {
				break
			}
			if s.closed && s.head == len(s.q) && !s.busy {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		in := s.q[s.head]
		s.q[s.head] = inbound{}
		s.head++
		if s.head == len(s.q) {
			s.q = s.q[:0]
			s.head = 0
		} else if s.head >= 1024 && s.head*2 >= len(s.q) {
			// A backlog that never fully drains would otherwise grow the
			// slab forever behind a dead prefix.
			n := copy(s.q, s.q[s.head:])
			clearTail := s.q[n:]
			for i := range clearTail {
				clearTail[i] = inbound{}
			}
			s.q = s.q[:n]
			s.head = 0
		}
		s.busy = true
		s.mu.Unlock()
		s.proc(in)
		s.mu.Lock()
		s.busy = false
	}
}

// enqueue hands in to the shard, routing it inline when the shard is
// idle. It reports false once the shard is closed.
func (s *shard) enqueue(in inbound) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if !s.busy && s.head == len(s.q) {
		s.busy = true
		s.mu.Unlock()
		s.proc(in)
		s.mu.Lock()
		s.busy = false
		if s.head < len(s.q) || s.closed {
			s.cond.Signal()
		}
		s.mu.Unlock()
		return true
	}
	// Queue residency is only stamped here, on the backlog path: work
	// taken inline never waits, so the fast path pays no clock read and
	// queueWait correctly reports zero for it.
	if in.enq.IsZero() && in.msg != nil {
		in.enq = time.Now()
	}
	s.q = append(s.q, in)
	s.cond.Signal()
	s.mu.Unlock()
	return true
}

// shardFor picks the dispatch shard for one inbound unit. The mapping
// carries the broker's ordering contracts into the concurrent world:
//
//   - Events, controls, and internal ctl thunks all map to shard 0,
//     keeping the event plane's total order and the link-teardown
//     ordering of the old single loop.
//   - A request arriving over a link is keyed by (arrival link, match
//     tag) — the flow identity. routeRequest pushes the arrival hop, so
//     that key is exactly the route top the response will carry back:
//     the response lands on the same shard and settles the flow's
//     in-flight entry there.
//   - Responses, and internally submitted messages whose route stack
//     already carries their arrival hop, are keyed by (route top, match
//     tag) for the same reason.
func (b *Broker) shardFor(in inbound) int {
	if b.nshards == 1 || in.ctl != nil || in.msg == nil {
		return 0
	}
	m := in.msg
	if m.Type == wire.Event || m.Type == wire.Control {
		return 0
	}
	if m.Type == wire.Request && in.from != nil {
		return b.shardOfFlow(in.from.id, m.Seq)
	}
	if len(m.Route) > 0 {
		return b.shardOfFlow(m.Route[len(m.Route)-1], m.Seq)
	}
	return b.shardOfFlow("", m.Seq)
}

// shardOfFlow hashes a flow identity — return-hop link id plus match
// tag — onto a shard index (FNV-1a, inlined to keep the hot path
// allocation-free).
func (b *Broker) shardOfFlow(key string, seq uint64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= seq
	h *= prime64
	return int(h % uint64(b.nshards))
}

// publishLinksLocked republishes the lock-free link-registry snapshot;
// call with b.mu held after any mutation of b.links.
func (b *Broker) publishLinksLocked() {
	snap := make(map[string]*link, len(b.links))
	for id, l := range b.links {
		snap[id] = l
	}
	b.linksSnap.Store(&snap)
}

// publishModulesLocked republishes the lock-free module-registry
// snapshot; call with b.mu held after any mutation of b.modules.
func (b *Broker) publishModulesLocked() {
	snap := make(map[string]*moduleRunner, len(b.modules))
	for name, r := range b.modules {
		snap[name] = r
	}
	b.modsSnap.Store(&snap)
}

// New creates a broker for the given rank. Links are attached afterwards
// with AttachConn / SetParent, then Start runs the routing loop.
func New(cfg Config) (*Broker, error) {
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.EventHistory == 0 {
		cfg.EventHistory = 1024
	}
	tree, err := topo.NewTree(cfg.Size, cfg.Arity)
	if err != nil {
		return nil, err
	}
	if !tree.Valid(cfg.Rank) {
		return nil, fmt.Errorf("broker: rank %d outside session of size %d", cfg.Rank, cfg.Size)
	}
	ring, err := topo.NewRing(cfg.Size)
	if err != nil {
		return nil, err
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultRPCTimeout
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}
	b := &Broker{
		cfg:        cfg,
		tree:       tree,
		ring:       ring,
		links:      make(map[string]*link),
		modules:    make(map[string]*moduleRunner),
		parentRank: tree.Parent(cfg.Rank),
		done:       make(chan struct{}),
	}
	b.mu.SetClass("broker.Broker.mu")
	b.evMu.SetClass("broker.Broker.evMu")
	nsh := cfg.Shards
	if nsh == 0 {
		nsh = runtime.GOMAXPROCS(0)
		if nsh > 8 {
			nsh = 8
		}
	}
	if nsh < 1 {
		nsh = 1
	}
	b.nshards = nsh
	b.shards = make([]*shard, nsh)
	for i := range b.shards {
		s := &shard{proc: b.process, inflight: make(map[string]*inflightReq)}
		s.cond = sync.NewCond(&s.mu)
		b.shards[i] = s
	}
	b.binBodies.Store(cfg.BinaryBodies)
	b.publishLinksLocked()
	b.publishModulesLocked()
	for r := cfg.Rank; tree.Parent(r) >= 0; r = tree.Parent(r) {
		b.depth++
	}
	b.view = topo.NewView(tree)
	for _, r := range cfg.Tombstones {
		b.view.Leave(r)
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = 1
	}
	b.epoch.Store(epoch)
	b.space.Store(uint32(b.view.Size()))
	reg := obs.NewRegistry()
	b.metrics = reg
	b.ctr = counters{
		requestsRouted:   reg.Counter(wire.MetricRequestsRouted),
		requestsUpstream: reg.Counter(wire.MetricRequestsUpstream),
		requestsRing:     reg.Counter(wire.MetricRequestsRing),
		responsesRouted:  reg.Counter(wire.MetricResponsesRouted),
		eventsPublished:  reg.Counter(wire.MetricEventsPublished),
		eventsApplied:    reg.Counter(wire.MetricEventsApplied),
		eventsDuplicate:  reg.Counter(wire.MetricEventsDuplicate),
		eventSeqGaps:     reg.Counter(wire.MetricEventSeqGaps),

		eventsFanoutEncodes: reg.Counter(wire.MetricEventsFanoutEncodes),
		eventsFanoutReuse:   reg.Counter(wire.MetricEventsFanoutReuse),
		reparents:        reg.Counter(wire.MetricReparents),
		sendErrors:       reg.Counter(wire.MetricSendErrors),
		inflightFailed:   reg.Counter(wire.MetricInflightFailed),
		joins:            reg.Counter(wire.MetricJoins),
		leaves:           reg.Counter(wire.MetricLeaves),
		drains:           reg.Counter(wire.MetricDrains),
		epochRejects:     reg.Counter(wire.MetricEpochRejects),

		dropsUnknownType:    reg.Counter(wire.MetricDropsUnknownType),
		dropsEmptyRoute:     reg.Counter(wire.MetricDropsEmptyRoute),
		dropsUnknownLink:    reg.Counter(wire.MetricDropsUnknownLink),
		dropsUnknownControl: reg.Counter(wire.MetricDropsUnknownControl),

		logRecords:    reg.Counter(wire.MetricLogRecords),
		logForwarded:  reg.Counter(wire.MetricLogForwarded),
		logFwdBatches: reg.Counter(wire.MetricLogFwdBatches),
	}
	b.epochGauge = reg.Gauge(wire.MetricEpoch)
	b.epochGauge.Set(int64(epoch))
	b.hist = hists{
		requestQueue:  reg.Histogram(wire.MetricRequestQueueNS),
		routeRequest:  reg.Histogram(wire.MetricRouteRequestNS),
		routeResponse: reg.Histogram(wire.MetricRouteResponseNS),
		applyEvent:    reg.Histogram(wire.MetricApplyEventNS),
	}
	spans := cfg.TraceSpans
	if spans == 0 {
		spans = obs.DefaultTraceSpans
	}
	if spans < 0 {
		spans = 0
	}
	b.traces = obs.NewTraceBuffer(spans)

	// Log plane: the local record ring, a same-sized aggregation ring
	// for records forwarded up by descendants, and the leveled logger.
	recs := cfg.LogRecords
	if recs == 0 {
		recs = obs.DefaultLogRecords
	}
	if recs < 0 {
		recs = 0
	}
	b.boot = time.Now().UnixNano()
	b.log = obs.NewLogger(obs.NewLogRing(recs, b.boot), cfg.Rank)
	b.fwd = obs.NewLogRing(recs, b.boot)
	if cfg.LogLevel != 0 {
		b.log.SetVerbosity(cfg.LogLevel)
	}
	b.log.SetEpochFn(b.epoch.Load)
	b.log.SetCounter(b.ctr.logRecords)
	if cfg.Log != nil {
		sink, rank := cfg.Log, cfg.Rank
		b.log.SetMirror(func(r obs.Record) {
			sink("rank %d: [%s] %s", rank, r.Sub, r.Msg)
		})
	}
	return b, nil
}

// Logger returns the broker's leveled logger; comms modules and the
// session log through it so their records land in the rank's ring with
// rank/epoch/severity stamps.
func (b *Broker) Logger() *obs.Logger { return b.log }

// newTraceID originates a session-unique, nonzero trace id: the
// originating rank (+1, so rank 0 still yields nonzero ids) in the high
// bits over a per-broker sequence.
func (b *Broker) newTraceID() uint64 {
	return uint64(b.cfg.Rank+1)<<40 | (b.traceSeq.Add(1) & (1<<40 - 1))
}

// Metrics returns the broker's observability registry. Comms modules
// loaded into this broker record their metrics here (namespaced by
// module name), so one registry snapshot covers the whole rank.
func (b *Broker) Metrics() *obs.Registry { return b.metrics }

// Traces returns the broker's bounded trace-span ring.
func (b *Broker) Traces() *obs.TraceBuffer { return b.traces }

// inflightReq is the bookkeeping for one request forwarded over an
// outbound link (see Broker.inflight).
type inflightReq struct {
	topic   string
	seq     uint64
	route   []string // route stack at forward time (top = arrival hop)
	out     string   // outbound link id
	arrival string   // arrival link id ("" for broker-internal submissions)
	// Trace context at forward time, so the EHOSTUNREACH response
	// synthesized on a link drop carries the request's trace and its
	// failure span lands in the right chain.
	traceID uint64
	parent  uint8
	hops    uint8
}

// inflightKey identifies a forwarded request by its match tag plus the
// return route, which together are unique: handle ids are broker-unique
// and tags are unique per handle.
func inflightKey(seq uint64, route []string) string {
	var num [20]byte
	n := 21
	for _, hop := range route {
		n += len(hop) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.Write(strconv.AppendUint(num[:0], seq, 10))
	for _, hop := range route {
		sb.WriteByte('|')
		sb.WriteString(hop)
	}
	return sb.String()
}

// forwardTracked forwards a routed request over out, recording it in
// the flow shard's in-flight table so a death of out fails it back fast
// (see linkDown). Requests with no match tag (fire-and-forget) or no
// return route are not tracked: nothing is waiting on them.
//
// Sharding opens a race the single routing loop never had: the send and
// the link's teardown sweep now run on different goroutines. The entry
// is inserted before the send; if the send fails — or the link was
// deregistered underneath it, meaning the teardown sweep may already
// have run and missed the fresh entry — whichever side deletes the
// entry under imu (this path or the sweep) synthesizes the
// EHOSTUNREACH, so the requester hears exactly one verdict.
func (b *Broker) forwardTracked(m *wire.Message, out *link, arrival string) {
	if m.Seq == 0 || len(m.Route) == 0 {
		b.sendHandoff(out, m)
		return
	}
	e := &inflightReq{
		topic:   m.Topic,
		seq:     m.Seq,
		route:   append([]string(nil), m.Route...),
		out:     out.id,
		arrival: arrival,
		traceID: m.TraceID,
		parent:  m.Parent,
		hops:    m.Hops,
	}
	key := inflightKey(e.seq, e.route)
	s := b.shards[b.shardOfFlow(e.route[len(e.route)-1], e.seq)]
	s.imu.Lock()
	s.inflight[key] = e
	s.imu.Unlock()
	err := b.sendHandoffErr(out, m) // m belongs to the link writer now; use e below
	if err == nil && b.linkRegistered(out) {
		return
	}
	s.imu.Lock()
	_, present := s.inflight[key]
	if present {
		delete(s.inflight, key)
	}
	s.imu.Unlock()
	if present {
		b.failInflight(e)
	}
}

// linkRegistered reports whether l is still the registry's link for its
// id. linkDown deregisters before sweeping the in-flight tables, so a
// link observed here as registered is guaranteed to have its entries
// swept by any later teardown.
func (b *Broker) linkRegistered(l *link) bool {
	snap := b.linksSnap.Load()
	return snap != nil && (*snap)[l.id] == l
}

// failInflight answers a tracked request with EHOSTUNREACH after its
// outbound link died; the synthesized response retraces the recorded
// route under the request's trace context.
func (b *Broker) failInflight(e *inflightReq) {
	b.ctr.inflightFailed.Inc()
	req := &wire.Message{Type: wire.Request, Topic: e.topic, Seq: e.seq, Route: e.route,
		TraceID: e.traceID, Parent: e.parent, Hops: e.hops}
	b.routeResponse(inbound{msg: wire.NewErrorResponse(req, ErrnoHostUnreach,
		fmt.Sprintf("rank %d: link %s down on return route", b.cfg.Rank, e.out))})
}

// inflightCount sums the shard in-flight tables (for tests and
// introspection).
func (b *Broker) inflightCount() int {
	n := 0
	for _, s := range b.shards {
		s.imu.Lock()
		n += len(s.inflight)
		s.imu.Unlock()
	}
	return n
}

// Rank returns this broker's rank in the comms session.
func (b *Broker) Rank() int { return b.cfg.Rank }

// Size returns the comms session size.
func (b *Broker) Size() int { return b.cfg.Size }

// Tree returns the request-plane tree shape.
func (b *Broker) Tree() topo.Tree { return b.tree }

// Clock returns the broker's time source.
func (b *Broker) Clock() clock.Clock { return b.cfg.Clock }

// IsRoot reports whether this broker is the session root (rank 0).
func (b *Broker) IsRoot() bool { return b.cfg.Rank == 0 }

// ParentRank returns the current tree-parent rank, or -1 at the root.
// It changes after self-healing re-parenting.
func (b *Broker) ParentRank() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.parentRank
}

// Stats returns a snapshot of the broker's counters. Each field is an
// independent atomic load; no broker lock is taken, so Stats is safe to
// poll at any rate without slowing the routing loop.
func (b *Broker) Stats() Stats {
	return Stats{
		RequestsRouted:   b.ctr.requestsRouted.Load(),
		RequestsUpstream: b.ctr.requestsUpstream.Load(),
		RequestsRing:     b.ctr.requestsRing.Load(),
		ResponsesRouted:  b.ctr.responsesRouted.Load(),
		EventsPublished:  b.ctr.eventsPublished.Load(),
		EventsApplied:    b.ctr.eventsApplied.Load(),
		EventsDuplicate:  b.ctr.eventsDuplicate.Load(),
		EventSeqGaps:     b.ctr.eventSeqGaps.Load(),
		Reparents:        b.ctr.reparents.Load(),
		SendErrors:       b.ctr.sendErrors.Load(),
		InflightFailed:   b.ctr.inflightFailed.Load(),
		Joins:            b.ctr.joins.Load(),
		Leaves:           b.ctr.leaves.Load(),
		Drains:           b.ctr.drains.Load(),
		EpochRejects:     b.ctr.epochRejects.Load(),
	}
}


// AttachConn registers a transport connection as a link of the given
// kind and starts its reader. Safe to call before or after Start.
func (b *Broker) AttachConn(kind LinkKind, c transport.Conn) {
	b.attachConn(kind, c, false)
}

// AttachPendingConn registers the child tree link of a joining rank:
// the link starts pending, so the membership fence admits nothing but
// the cmb.join handshake on it until the join is served.
func (b *Broker) AttachPendingConn(kind LinkKind, c transport.Conn) {
	b.attachConn(kind, c, true)
}

func (b *Broker) attachConn(kind LinkKind, c transport.Conn, pending bool) {
	l := &link{kind: kind, id: kind.prefix() + c.PeerIdentity(), conn: c}
	if kind == LinkChildEvent {
		l.gated = true // opened by the child's cmb.resync
	}
	if pending {
		l.pending.Store(true)
	}
	b.meterLink(l)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		c.Close()
		return
	}
	// A link with the same id means the peer was re-wired to this broker
	// again (e.g. the ring re-spliced onto the same neighbour). Close the
	// displaced conn: overwriting the registry entry alone would orphan
	// it, leaking its read loop past Shutdown.
	displaced := b.links[l.id]
	b.links[l.id] = l
	switch kind {
	case LinkParentTree:
		b.parentTree.Store(l)
	case LinkParentEvent:
		b.parentEvent.Store(l)
	case LinkRingOut:
		b.ringOut.Store(l)
	}
	b.publishLinksLocked()
	b.mu.Unlock()
	if displaced != nil && displaced.conn != nil {
		displaced.conn.Close()
	}
	go b.readLoop(l)
}

// ReplaceRingOut re-points this broker's ring-out link at a new
// next-live neighbour (the membership just grew or shrank) and closes
// the old link. Requests in flight on the old link fail fast with
// EHOSTUNREACH and are retried by their callers over the new wiring.
func (b *Broker) ReplaceRingOut(c transport.Conn) {
	old := b.ringOut.Load()
	b.AttachConn(LinkRingOut, c)
	if old != nil && old.conn != nil {
		old.conn.Close()
	}
}

// DropRingOut closes the ring-out link without a replacement: this
// broker is the sole live rank, so the ring plane has no peer left.
func (b *Broker) DropRingOut() {
	b.mu.Lock()
	old := b.ringOut.Load()
	b.ringOut.Store(nil)
	b.mu.Unlock()
	if old != nil && old.conn != nil {
		old.conn.Close()
	}
}

// meterLink installs per-link traffic counters on metered transports
// (bytes each way plus frames saved by write coalescing), named
// "link.<id>.*" in the broker registry so they surface in cmb.stats and
// the mon reduction automatically.
func (b *Broker) meterLink(l *link) {
	mc, ok := l.conn.(transport.Metered)
	if !ok {
		return
	}
	mc.SetMeter(
		b.metrics.Counter(wire.MetricLinkPrefix+l.id+wire.MetricSuffixBytesSent),
		b.metrics.Counter(wire.MetricLinkPrefix+l.id+wire.MetricSuffixBytesRecv),
		b.metrics.Counter(wire.MetricLinkPrefix+l.id+wire.MetricSuffixFramesCoalesc),
	)
}

// readLoop pumps messages from a connection into the dispatch shards.
// The link-down cleanup rides shard 0 as a ctl thunk, after every
// message the read loop itself submitted there.
func (b *Broker) readLoop(l *link) {
	for {
		m, err := l.conn.Recv()
		if err != nil {
			b.shards[0].enqueue(inbound{ctl: func() { b.linkDown(l) }})
			return
		}
		b.submit(inbound{msg: m, from: l})
	}
}

// Start launches the shard workers (the routing core, until Shutdown)
// plus the periodic membership anti-entropy pull on non-root brokers.
func (b *Broker) Start() {
	var wg sync.WaitGroup
	wg.Add(len(b.shards))
	for _, s := range b.shards {
		go func(s *shard) {
			defer wg.Done()
			s.run()
		}(s)
	}
	go func() {
		wg.Wait()
		close(b.done)
	}()
	if b.cfg.Rank != 0 && b.cfg.SyncInterval > 0 {
		b.bg.Add(1)
		go b.runAntiEntropy()
	}
}

// process executes one unit of inbound work. It runs on whichever
// goroutine holds the owning shard's busy token — the shard worker or
// an inline submitter — so everything it calls must be safe off the old
// single routing loop: registry reads go through the lock-free
// snapshots, in-flight bookkeeping through the flow shard's imu, and
// event apply/replay through evMu.
func (b *Broker) process(in inbound) {
	if in.ctl != nil {
		in.ctl()
		return
	}
	if !b.admitEpoch(in) {
		return
	}
	// A peer operating under a newer membership epoch means this
	// broker's view may be stale: pull the root's view off-loop.
	if in.from != nil && in.msg.Epoch > b.epoch.Load() {
		b.startMembershipSync()
	}
	switch in.msg.Type {
	case wire.Request:
		b.routeRequest(in)
	case wire.Response:
		b.routeResponse(in)
	case wire.Event:
		b.applyEvent(in.msg)
	case wire.Control:
		b.handleControl(in)
	default:
		b.ctr.dropsUnknownType.Inc()
		b.log.Warnf(wire.ServiceCMB, "dropping message of unknown type %d", in.msg.Type)
	}
}

// submit is how handles, modules, and read loops inject work into the
// dispatch core.
func (b *Broker) submit(in inbound) bool {
	return b.shards[b.shardFor(in)].enqueue(in)
}

// routeRequest implements the paper's routing rules: requests travel
// upstream in the tree to the first matching comms module, or around the
// ring when addressed to a concrete rank. Every routed request advances
// the message's trace context one hop and records a span; the span
// fields are captured into locals before the message is handed to its
// next owner (a module inbox or an outbound link), so recording never
// races with downstream mutation.
func (b *Broker) routeRequest(in inbound) {
	start := time.Now()
	m := in.msg
	b.ctr.requestsRouted.Inc()
	if in.from != nil {
		m.PushRoute(in.from.id)
	}

	arrival := ""
	if in.from != nil {
		arrival = in.from.id
	}

	if m.TraceID == 0 {
		m.TraceID = b.newTraceID()
	}
	if m.Epoch == 0 {
		m.Epoch = b.epoch.Load()
	}
	m.Parent = m.Hops
	if m.Hops < 255 {
		m.Hops++
	}
	tid, parent, hop, topic := m.TraceID, m.Parent, m.Hops, m.Topic

	var outLink string
	var errnum int32

	switch {
	case m.Nodeid == wire.NodeidUpstream:
		m.Nodeid = wire.NodeidAny
		outLink, errnum = b.forwardUpstream(m, arrival)
	case m.Nodeid == wire.NodeidAny:
		if in.forceUp {
			outLink, errnum = b.forwardUpstream(m, arrival)
			break
		}
		if svc := m.Service(); b.dispatchLocal(m) {
			outLink = "local:" + svc
			break
		}
		outLink, errnum = b.forwardUpstream(m, arrival)
	case int(m.Nodeid) == b.cfg.Rank:
		if svc := m.Service(); b.dispatchLocal(m) {
			outLink = "local:" + svc
		} else {
			errnum = ErrnoNoSys
			b.respondErr(m, ErrnoNoSys, fmt.Sprintf("no module %q at rank %d", svc, b.cfg.Rank))
		}
	case int(m.Nodeid) < b.RankSpace() || fromRing(in.from):
		// Rank-addressed: forward on the ring overlay. Transit messages
		// (arriving over a ring link) are forwarded even when the target
		// lies beyond this broker's rank space: during growth a broker
		// that has not yet folded the join event must not reject traffic
		// a fresher originator validly addressed — the TTL below still
		// bounds bogus targets.
		b.ctr.requestsRing.Inc()
		if b.Departed(int(m.Nodeid)) {
			// Fail fast instead of looping a request to a tombstone
			// around the ring until its TTL runs out.
			errnum = ErrnoHostUnreach
			b.respondErr(m, ErrnoHostUnreach, fmt.Sprintf("rank %d departed the session", m.Nodeid))
			break
		}
		if len(m.Route) > b.RankSpace()+8 {
			errnum = ErrnoHostUnreach
			b.respondErr(m, ErrnoHostUnreach, "ring TTL exceeded")
			break
		}
		out := b.ringOut.Load()
		if out == nil {
			errnum = ErrnoHostUnreach
			b.respondErr(m, ErrnoHostUnreach, fmt.Sprintf("rank %d unreachable: no ring link", m.Nodeid))
			break
		}
		outLink = out.id
		b.forwardTracked(m, out, arrival)
	default:
		errnum = ErrnoInval
		b.respondErr(m, ErrnoInval, fmt.Sprintf("nodeid %d outside rank space of size %d", m.Nodeid, b.RankSpace()))
	}

	queue := queueWait(in.enq, start)
	work := time.Since(start)
	b.hist.requestQueue.Observe(queue)
	b.hist.routeRequest.Observe(work)
	if outLink == "" {
		outLink = "error"
	}
	b.traces.Append(obs.Span{
		Trace: tid, Rank: b.cfg.Rank, Hop: hop, Parent: parent,
		Kind: "request", Topic: topic, Link: outLink, Errnum: errnum,
		QueueNS: int64(queue), WorkNS: int64(work), StartNS: start.UnixNano(),
	})
}

// fromRing reports whether a message arrived over a ring link (it is in
// transit on the rank-addressed plane, not originating here).
func fromRing(l *link) bool {
	return l != nil && (l.kind == LinkRingIn || l.kind == LinkRingOut)
}

// queueWait is the inbox residence time of a message picked up at
// start; zero for loop-internal submissions that never queued.
func queueWait(enq, start time.Time) time.Duration {
	if enq.IsZero() {
		return 0
	}
	if d := start.Sub(enq); d > 0 {
		return d
	}
	return 0
}

// dispatchLocal delivers m to a local comms module or the built-in cmb
// service. It reports whether a local service matched.
func (b *Broker) dispatchLocal(m *wire.Message) bool {
	svc := m.Service()
	if svc == wire.ServiceCMB {
		return b.builtinRequest(m)
	}
	snap := b.modsSnap.Load()
	if snap == nil {
		return false
	}
	r, ok := (*snap)[svc]
	if !ok {
		return false
	}
	r.inbox.PushLane(b.laneFor(m), m)
	return true
}

// laneFor maps a request onto its module-mailbox lane: the shard
// routing its flow. Lanes keep a hot module's mailbox from serializing
// every dispatch shard on one lock while preserving per-flow FIFO (one
// flow, one shard, one lane).
func (b *Broker) laneFor(m *wire.Message) int {
	if len(m.Route) == 0 {
		return 0
	}
	return b.shardOfFlow(m.Route[len(m.Route)-1], m.Seq)
}

// forwardUpstream sends m toward the root, or answers ENOSYS at the
// root. At a non-root broker whose parent link is down (crashed parent,
// re-parenting still in flight) it answers EHOSTUNREACH instead, so
// callers fail fast and can retry after the overlay self-heals. It
// returns the outbound link id (or "") and the errnum it answered with,
// for the caller's trace span.
func (b *Broker) forwardUpstream(m *wire.Message, arrival string) (string, int32) {
	b.ctr.requestsUpstream.Inc()
	p := b.parentTree.Load()
	if p == nil {
		if b.IsRoot() {
			b.respondErr(m, ErrnoNoSys, fmt.Sprintf("no module %q in session", m.Service()))
			return "", ErrnoNoSys
		}
		b.respondErr(m, ErrnoHostUnreach,
			fmt.Sprintf("rank %d: parent link down (re-parenting)", b.cfg.Rank))
		return "", ErrnoHostUnreach
	}
	b.forwardTracked(m, p, arrival)
	return p.id, 0
}

// routeResponse pops one hop off the route stack and forwards. A
// response passing through settles the matching in-flight entry created
// when the request was forwarded. Traced responses continue the
// request's hop numbering and record a span per hop, including the
// errnum they carry (so a failure's origin is visible in the chain).
func (b *Broker) routeResponse(in inbound) {
	start := time.Now()
	m := in.msg
	b.ctr.responsesRouted.Inc()
	var tid uint64
	var parent, hop uint8
	var topic string
	var errnum int32
	if m.TraceID != 0 {
		m.Parent = m.Hops
		if m.Hops < 255 {
			m.Hops++
		}
		tid, parent, hop, topic, errnum = m.TraceID, m.Parent, m.Hops, m.Topic, m.Errnum
	}
	outLink := b.forwardResponse(in)
	if tid != 0 {
		queue := queueWait(in.enq, start)
		work := time.Since(start)
		b.hist.routeResponse.Observe(work)
		if outLink == "" {
			outLink = "drop"
		}
		b.traces.Append(obs.Span{
			Trace: tid, Rank: b.cfg.Rank, Hop: hop, Parent: parent,
			Kind: "response", Topic: topic, Link: outLink, Errnum: errnum,
			QueueNS: int64(queue), WorkNS: int64(work), StartNS: start.UnixNano(),
		})
	} else {
		b.hist.routeResponse.Observe(time.Since(start))
	}
}

// forwardResponse does the actual response routing and returns the link
// the response left on ("" when it was dropped). A response passing
// through settles the flow shard's in-flight entry before the route pop,
// so the entry key still matches the forward-time route.
func (b *Broker) forwardResponse(in inbound) string {
	m := in.msg
	if m.Seq != 0 && len(m.Route) > 0 {
		s := b.shards[b.shardOfFlow(m.Route[len(m.Route)-1], m.Seq)]
		s.imu.Lock()
		if len(s.inflight) > 0 {
			delete(s.inflight, inflightKey(m.Seq, m.Route))
		}
		s.imu.Unlock()
	}
	if m.Seq == 0 && len(m.Route) == 0 {
		return "" // response to a fire-and-forget send: drop
	}
	id, ok := m.PopRoute()
	if !ok {
		b.ctr.dropsEmptyRoute.Inc()
		b.log.LogT(obs.LevelWarn, wire.ServiceCMB, m.TraceID, "response %s with empty route stack dropped", m.Topic)
		return ""
	}
	var l *link
	if snap := b.linksSnap.Load(); snap != nil {
		l = (*snap)[id]
	}
	if l == nil {
		b.ctr.dropsUnknownLink.Inc()
		b.log.LogT(obs.LevelWarn, wire.ServiceCMB, m.TraceID, "response %s to unknown link %q dropped", m.Topic, id)
		return ""
	}
	b.sendHandoff(l, m)
	return l.id
}

// respondErr generates an error response for a request and routes it
// back toward the requester. Fire-and-forget requests get no response.
func (b *Broker) respondErr(req *wire.Message, errnum int32, msg string) {
	if req.Seq == 0 {
		return
	}
	b.routeResponse(inbound{msg: wire.NewErrorResponse(req, errnum, msg)})
}

// linkDown cleans up after a connection failure or close. Requests this
// broker forwarded over the dead link are failed back toward their
// requesters with EHOSTUNREACH: their responses could only have returned
// through this link, so without this they would hang until the caller's
// deadline.
func (b *Broker) linkDown(l *link) {
	b.mu.Lock()
	// Deregister only if the registry still points at this exact link: a
	// re-wire may have installed a fresh link under the same id, and
	// deleting that one would hide a live conn from Shutdown.
	if b.links[l.id] == l {
		delete(b.links, l.id)
		b.publishLinksLocked()
	}
	parentLost := false
	oldParent := b.parentRank
	if b.parentTree.Load() == l {
		b.parentTree.Store(nil)
		parentLost = true
	}
	if b.parentEvent.Load() == l {
		b.parentEvent.Store(nil)
		parentLost = true
	}
	if b.ringOut.Load() == l {
		b.ringOut.Store(nil)
	}
	closed := b.closed
	reparent := b.cfg.Reparent
	trigger := parentLost && !closed && reparent != nil && !b.reparenting
	if trigger {
		b.reparenting = true
	}
	b.mu.Unlock()
	// Sweep the shard in-flight tables only after the registry entry is
	// deregistered (published above): forwardTracked re-checks
	// registration after its send, so any entry inserted after this
	// sweep misses it will settle itself.
	var failed []*inflightReq
	for _, s := range b.shards {
		s.imu.Lock()
		for key, e := range s.inflight {
			switch l.id {
			case e.out:
				failed = append(failed, e)
				delete(s.inflight, key)
			case e.arrival:
				// The requester's own link is gone; any response would be
				// dropped at routing time, so just forget the entry.
				delete(s.inflight, key)
			}
		}
		s.imu.Unlock()
	}
	l.conn.Close()
	for _, e := range failed {
		b.failInflight(e)
	}
	// Both parent-plane links fail on a parent death; re-parent once.
	if trigger {
		go reparent(b, oldParent)
	}
}

// SetParent atomically replaces the tree and event parent links after
// re-parenting, then requests an event resync so no sequence numbers are
// missed. newParentRank records the adoptive parent for introspection.
func (b *Broker) SetParent(treeConn, eventConn transport.Conn, newParentRank int) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		treeConn.Close()
		eventConn.Close()
		return
	}
	tl := &link{kind: LinkParentTree, id: LinkParentTree.prefix() + treeConn.PeerIdentity(), conn: treeConn}
	el := &link{kind: LinkParentEvent, id: LinkParentEvent.prefix() + eventConn.PeerIdentity(), conn: eventConn}
	b.meterLink(tl)
	b.meterLink(el)
	b.links[tl.id] = tl
	b.links[el.id] = el
	b.publishLinksLocked()
	b.parentTree.Store(tl)
	b.parentEvent.Store(el)
	b.parentRank = newParentRank
	b.reparenting = false
	last := b.lastEventSeq
	b.mu.Unlock()
	b.ctr.reparents.Inc()
	go b.readLoop(tl)
	go b.readLoop(el)
	// Ask the new parent to replay any events we missed during failover.
	resync := &wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: last}
	b.send(el, resync)
}

// handleControl processes link-level control messages.
func (b *Broker) handleControl(in inbound) {
	switch in.msg.Topic {
	case wire.TopicResync:
		if in.from == nil {
			return
		}
		// replayEvents ungates the link itself, inside the event lock, so
		// no event sequenced between "replay backlog" and "ungate" can be
		// lost or duplicated.
		b.replayEvents(in.from, in.msg.Seq)
	case wire.TopicSub:
		if in.from != nil {
			var body struct {
				Prefix string `json:"prefix"`
			}
			if err := in.msg.UnpackJSON(&body); err == nil {
				b.mu.Lock()
				in.from.subs = append(in.from.subs, body.Prefix)
				b.mu.Unlock()
			}
		}
	case wire.TopicUnsub:
		if in.from != nil {
			var body struct {
				Prefix string `json:"prefix"`
			}
			if err := in.msg.UnpackJSON(&body); err == nil {
				b.mu.Lock()
				subs := in.from.subs[:0]
				for _, s := range in.from.subs {
					if s != body.Prefix {
						subs = append(subs, s)
					}
				}
				in.from.subs = subs
				b.mu.Unlock()
			}
		}
	default:
		b.ctr.dropsUnknownControl.Inc()
		b.log.Warnf(wire.ServiceCMB, "unknown control %q dropped", in.msg.Topic)
	}
}

// Shutdown stops the broker: modules are shut down, links closed, and
// in-process handles unblocked with ErrnoShutdown failures.
func (b *Broker) Shutdown() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	links := make([]*link, 0, len(b.links))
	for _, l := range b.links {
		links = append(links, l)
	}
	runners := make([]*moduleRunner, 0, len(b.modules))
	for _, r := range b.modules {
		runners = append(runners, r)
	}
	b.mu.Unlock()

	// Handles first: failing them unblocks any module goroutine parked in
	// an RPC, so module runners can then drain and stop.
	for _, l := range links {
		if l.conn != nil {
			l.conn.Close()
		}
		if l.h != nil {
			l.h.shutdown()
		}
	}
	for _, r := range runners {
		r.stop()
	}
	for _, s := range b.shards {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	<-b.done
	b.bg.Wait()
	// With every producer stopped, drop the event-history frames so the
	// release-exactly-once contract holds across broker teardown.
	b.mu.Lock()
	for i := range b.eventHist {
		if f := b.eventHist[i].frame; f != nil {
			f.Release()
		}
	}
	b.eventHist = nil
	b.mu.Unlock()
}

// matchTopic reports whether topic matches a subscription prefix, using
// the hierarchical namespace convention: a prefix matches itself and any
// dotted descendant ("kvs" matches "kvs.setroot" but not "kvsx").
func matchTopic(prefix, topic string) bool {
	if prefix == "" {
		return true
	}
	if !strings.HasPrefix(topic, prefix) {
		return false
	}
	return len(topic) == len(prefix) || topic[len(prefix)] == '.'
}
