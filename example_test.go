package fluxgo_test

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fluxgo"
)

// Example demonstrates the core workflow: a comms session, KVS commits
// with read-your-writes, and a collective barrier.
func Example() {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 4, HBInterval: time.Hour})
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	h := sess.Handle(3)
	defer h.Close()

	kv := fluxgo.NewKVS(h)
	kv.Put("a.b.c", 42)
	if _, err := kv.Commit(); err != nil {
		panic(err)
	}
	var v int
	kv.Get("a.b.c", &v)
	fmt.Println("a.b.c =", v)

	// Output:
	// a.b.c = 42
}

// ExampleBarrier synchronizes four processes across the session.
func ExampleBarrier() {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 4, HBInterval: time.Hour})
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := sess.Handle(p)
			defer h.Close()
			fluxgo.Barrier(h, "example", 4)
		}(p)
	}
	wg.Wait()
	fmt.Println("all processes synchronized")

	// Output:
	// all processes synchronized
}

// ExampleSubmitJob runs one batch job through the job service.
func ExampleSubmitJob() {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 2, HBInterval: time.Hour})
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	h := sess.Handle(1)
	defer h.Close()

	id, err := fluxgo.SubmitJob(h, fluxgo.JobSpec{Program: "echo", Args: []string{"hello"}, Nodes: 2})
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := fluxgo.WaitJob(ctx, h, id)
	if err != nil {
		panic(err)
	}
	fmt.Printf("job %s: %s on %d nodes\n", info.ID, info.State, len(info.Ranks))

	// Output:
	// job 1: complete on 2 nodes
}

// ExampleInstance_Spawn shows the job hierarchy: a child instance with
// its own scheduler policy over a bounded lease.
func ExampleInstance_Spawn() {
	cluster, err := fluxgo.BuildCluster(fluxgo.ClusterSpec{
		Name: "c", Racks: 1, NodesPerRack: 4, SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		panic(err)
	}
	root, err := fluxgo.NewRootInstance(cluster, fluxgo.InstanceOptions{})
	if err != nil {
		panic(err)
	}
	defer root.Close()

	child, err := root.Spawn(fluxgo.Request{Nodes: 2}, 3, fluxgo.InstanceOptions{Policy: fluxgo.EASY{}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("child %s: %d nodes (bound %d), policy %s\n",
		child.ID(), child.Size(), child.MaxNodes(), child.Policy().Name())

	// Output:
	// child root.c1: 2 nodes (bound 3), policy easy
}
