package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary body codec (codec v3 payloads).
//
// JSON request/response bodies dominate the cost of the hot services
// (kvs.put/load, barrier.enter, cmb.pub): reflection-driven marshal on
// the way in, map allocation and base64 payload decode on the way out.
// This codec replaces the *body* encoding only — the frame header and
// framing stay byte-identical to wire v2/v3, so golden-frame
// compatibility is untouched and every other service keeps JSON.
//
// A binary body is the BinMagic byte followed by positional
// uvarint-length-prefixed fields; the schema is implicit in the
// reader/writer call sequence, exactly like the frame codec itself.
// Because JSON bodies always start with an ASCII byte ('{', '[', '"',
// a digit, ...), decoders sniff the first byte and accept either
// encoding unconditionally — binary is an *encoder-side* opt-in
// (negotiated through the cmb.join handshake; see broker.Config
// BinaryBodies), and a JSON-only peer never needs to know the binary
// form exists.
const BinMagic = 0xB3

// IsBinaryBody reports whether payload carries a binary-coded body.
func IsBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == BinMagic
}

// errBinTruncated is reported when a binary body ends mid-field.
var errBinTruncated = errors.New("wire: truncated binary body")

// BinWriter appends positional fields to a binary body. The zero value
// is not ready; use NewBinWriter, then call the Append methods in the
// field order the matching reader expects, and Finish for the payload.
type BinWriter struct {
	buf []byte
}

// NewBinWriter starts a binary body with room for sizeHint bytes.
func NewBinWriter(sizeHint int) *BinWriter {
	w := &BinWriter{buf: make([]byte, 0, sizeHint+1)}
	w.buf = append(w.buf, BinMagic)
	return w
}

// String appends a length-prefixed string field.
func (w *BinWriter) String(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes appends a length-prefixed byte field.
func (w *BinWriter) Bytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Uint appends a uvarint field.
func (w *BinWriter) Uint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// StringSlice appends a count-prefixed sequence of string fields.
func (w *BinWriter) StringSlice(ss []string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// BytesMap appends a count-prefixed sequence of key/value fields.
func (w *BinWriter) BytesMap(m map[string][]byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(m)))
	for k, v := range m {
		w.String(k)
		w.Bytes(v)
	}
}

// Finish returns the encoded body, ready to ship as a request or
// response payload (see RawBody).
func (w *BinWriter) Finish() []byte { return w.buf }

// BinReader decodes the positional fields of a binary body. Field reads
// after a decode error return zero values; check Err once at the end,
// mirroring the errors.Join style of batched validation.
type BinReader struct {
	data []byte
	err  error
}

// NewBinReader sniffs payload: ok is false when it does not carry a
// binary body (the caller falls back to JSON). The reader aliases
// payload; Bytes/BytesMap copy out, so decoded values are safe to
// retain even when payload lives in a pooled receive buffer.
func NewBinReader(payload []byte) (*BinReader, bool) {
	if !IsBinaryBody(payload) {
		return nil, false
	}
	return &BinReader{data: payload[1:]}, true
}

func (r *BinReader) fail() {
	if r.err == nil {
		r.err = errBinTruncated
	}
}

func (r *BinReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *BinReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.fail()
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

// String reads a length-prefixed string field.
func (r *BinReader) String() string {
	return string(r.take(r.uvarint()))
}

// Bytes reads a length-prefixed byte field, copied out of the payload.
func (r *BinReader) Bytes() []byte {
	b := r.take(r.uvarint())
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Uint reads a uvarint field.
func (r *BinReader) Uint() uint64 { return r.uvarint() }

// StringSlice reads a count-prefixed sequence of string fields.
func (r *BinReader) StringSlice() []string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)) { // each element needs >= 1 byte
		r.fail()
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		ss = append(ss, r.String())
	}
	return ss
}

// BytesMap reads a count-prefixed sequence of key/value fields.
func (r *BinReader) BytesMap() map[string][]byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.fail()
		return nil
	}
	m := make(map[string][]byte, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.String()
		m[k] = r.Bytes()
	}
	return m
}

// Err returns the first decode error, wrapped with the remaining-field
// context, or nil after a clean decode.
func (r *BinReader) Err() error {
	if r.err != nil {
		return fmt.Errorf("%w (%d bytes left)", r.err, len(r.data))
	}
	return nil
}

// RawBody marks a payload as already encoded: PackJSON (and therefore
// NewRequest/NewResponse) installs it verbatim instead of JSON-encoding
// it. It is how binary-coded bodies ride the existing message
// constructors.
type RawBody []byte
