// Package model implements the paper's analytical performance model for
// the KVS consumer phase (Section V-B).
//
// With G objects read collectively by C consumers through the tree of
// slave caches, and T(G) the time to replicate G objects into one slave
// cache from its CMB-tree parent, the maximum consumer latency is
//
//	latency(C, G) = log2(C) × T(G)
//
// so doubling the consumer count adds one cache level: a constant
// latency step of T(G). When G itself grows with scale, the geometric
// series argument predicts the latency doubles whenever G doubles with
// C (2T(2G)/2T(G) -> 2 for linear T), and true logarithmic scaling is
// reached only when G stays constant regardless of scale.
package model

import (
	"fmt"
	"math"
	"time"
)

// ConsumerLatency evaluates the model: log2(C) × T(G), where replicate
// is the measured or assumed T(G) for one cache level.
func ConsumerLatency(consumers int, replicate time.Duration) time.Duration {
	if consumers <= 1 {
		return 0
	}
	return time.Duration(math.Log2(float64(consumers)) * float64(replicate))
}

// LatencyStep is the predicted latency increase for every doubling of
// the consumer count at fixed G: exactly T(G).
func LatencyStep(replicate time.Duration) time.Duration { return replicate }

// FitReplicateTime inverts the model from measurements: given observed
// max consumer latencies at several consumer counts, it returns the
// least-squares estimate of T(G) for latency = log2(C)·T(G).
func FitReplicateTime(consumers []int, latencies []time.Duration) (time.Duration, error) {
	if len(consumers) != len(latencies) || len(consumers) == 0 {
		return 0, fmt.Errorf("model: need matching non-empty series")
	}
	// Minimize sum (y - T·x)^2 with x = log2(C): T = Σxy / Σx².
	var sxy, sxx float64
	for i, c := range consumers {
		if c < 2 {
			continue
		}
		x := math.Log2(float64(c))
		y := float64(latencies[i])
		sxy += x * y
		sxx += x * x
	}
	if sxx == 0 {
		return 0, fmt.Errorf("model: no usable points (all consumer counts < 2)")
	}
	return time.Duration(sxy / sxx), nil
}

// GrowthRatio predicts the latency ratio between scale k and scale k-1
// when the per-consumer object set grows by factor g at each doubling of
// C (g = 1: constant G, ratio -> (d+1)/d per level; g = 2: G doubles,
// ratio -> 2 for linear T — the paper's 2T(2G)/T(G) observation halved
// per its geometric-series form).
func GrowthRatio(doublings int, g float64) float64 {
	if doublings < 1 {
		return 1
	}
	// latency(k) = sum_{i=1..k} T(G·g^i) with linear T: proportional to
	// sum g^i. Ratio of consecutive partial sums.
	num, den := 0.0, 0.0
	for i := 1; i <= doublings; i++ {
		num += math.Pow(g, float64(i))
	}
	for i := 1; i <= doublings-1; i++ {
		den += math.Pow(g, float64(i))
	}
	if den == 0 {
		return num
	}
	return num / den
}

// RSquared measures how well the model latency = log2(C)·T explains the
// observations (1 = perfect).
func RSquared(consumers []int, latencies []time.Duration, replicate time.Duration) float64 {
	if len(consumers) == 0 {
		return 0
	}
	var mean float64
	for _, l := range latencies {
		mean += float64(l)
	}
	mean /= float64(len(latencies))
	var ssRes, ssTot float64
	for i, c := range consumers {
		pred := float64(ConsumerLatency(c, replicate))
		diff := float64(latencies[i]) - pred
		ssRes += diff * diff
		dm := float64(latencies[i]) - mean
		ssTot += dm * dm
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
