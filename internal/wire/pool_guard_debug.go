//go:build debuglock

package wire

import "sync/atomic"

// Debug release-guard: relState is 0 while a message is live and
// flipped to released when Release recycles it. A second Release before
// the message is re-armed (Get/Handoff both reset the marker) panics,
// surfacing use-after-release bugs that the no-op fast path would hide.

const relReleased int32 = 2

func (m *Message) guardArm() { atomic.StoreInt32(&m.relState, 0) }

func (m *Message) guardMarkReleased() { atomic.StoreInt32(&m.relState, relReleased) }

func (m *Message) guardIdleRelease() {
	if atomic.LoadInt32(&m.relState) == relReleased {
		panic("wire: Message double-released (second Release without re-arm)")
	}
}
