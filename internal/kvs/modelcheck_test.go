package kvs

import (
	"fmt"
	"math/rand"
	"testing"
)

// Model-based test: a random sequence of Put/Delete/Commit operations is
// applied both to the distributed KVS and to a plain in-memory reference
// map. After every commit, reads through the committing client (which
// has read-your-writes consistency) must match the reference exactly —
// including absence of deleted keys and last-write-wins semantics.
func TestKVSMatchesReferenceModel(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newKVSSession(t, 7, 2)
			c := client(t, s, 4)
			rng := rand.New(rand.NewSource(seed))
			ref := map[string]int{}

			keys := make([]string, 24)
			for i := range keys {
				// Mixed depths, shared prefixes, colliding directories.
				switch i % 3 {
				case 0:
					keys[i] = fmt.Sprintf("m.a.k%d", i)
				case 1:
					keys[i] = fmt.Sprintf("m.b.c.k%d", i)
				default:
					keys[i] = fmt.Sprintf("top%d", i)
				}
			}

			for step := 0; step < 120; step++ {
				key := keys[rng.Intn(len(keys))]
				switch rng.Intn(10) {
				case 0, 1: // delete
					if err := c.Delete(key); err != nil {
						t.Fatal(err)
					}
					delete(ref, key)
				default: // put
					v := rng.Intn(1000)
					if err := c.Put(key, v); err != nil {
						t.Fatal(err)
					}
					ref[key] = v
				}
				// Commit at random points and at the end.
				if rng.Intn(4) == 0 || step == 119 {
					if _, err := c.Commit(); err != nil {
						t.Fatal(err)
					}
					for _, k := range keys {
						want, exists := ref[k]
						var got int
						err := c.Get(k, &got)
						switch {
						case exists && err != nil:
							t.Fatalf("step %d: %s missing: %v (want %d)", step, k, err, want)
						case exists && got != want:
							t.Fatalf("step %d: %s = %d, want %d", step, k, got, want)
						case !exists && err == nil:
							t.Fatalf("step %d: deleted key %s still resolves to %d", step, k, got)
						case !exists && !ErrNotFound(err):
							t.Fatalf("step %d: %s unexpected error %v", step, k, err)
						}
					}
				}
			}
		})
	}
}

// Model-based test with several writers on disjoint key spaces: after a
// collective fence, every writer's view must contain the union of all
// reference maps.
func TestKVSFenceMatchesReferenceModel(t *testing.T) {
	const writers = 6
	s := newKVSSession(t, 3, 2)
	clients := make([]*Client, writers)
	refs := make([]map[string]int, writers)
	for w := range clients {
		clients[w] = client(t, s, w%3)
		refs[w] = map[string]int{}
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		for w, c := range clients {
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("fw%d.k%d", w, rng.Intn(8))
				v := rng.Intn(100)
				if err := c.Put(key, v); err != nil {
					t.Fatal(err)
				}
				refs[w][key] = v
			}
		}
		done := make(chan error, writers)
		for _, c := range clients {
			go func(c *Client) {
				_, err := c.Fence(fmt.Sprintf("mfence-%d", round), writers)
				done <- err
			}(c)
		}
		for range clients {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		// Every writer sees the union.
		for w, c := range clients {
			for ow := range refs {
				for k, want := range refs[ow] {
					var got int
					if err := c.Get(k, &got); err != nil {
						t.Fatalf("round %d: writer %d missing %s: %v", round, w, k, err)
					}
					if got != want {
						t.Fatalf("round %d: writer %d sees %s = %d, want %d", round, w, k, got, want)
					}
				}
			}
		}
	}
}
