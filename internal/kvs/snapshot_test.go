package kvs

import (
	"testing"

	"fluxgo/internal/session"
)

// TestSnapshotReads: old roots remain readable after later commits —
// the coexisting-snapshots property that makes the root switch atomic.
func TestSnapshotReads(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 1)

	c.Put("snap.k", "v1")
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	root1, ver1, err := c.RootRef()
	if err != nil {
		t.Fatal(err)
	}
	if root1 == "" || ver1 != 1 {
		t.Fatalf("root1=%q ver1=%d", root1, ver1)
	}

	c.Put("snap.k", "v2")
	c.Put("snap.extra", true)
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// Current read sees v2; snapshot read sees v1.
	var cur, old string
	if err := c.Get("snap.k", &cur); err != nil || cur != "v2" {
		t.Fatalf("current: %q %v", cur, err)
	}
	if err := c.GetAt(root1, "snap.k", &old); err != nil {
		t.Fatal(err)
	}
	if old != "v1" {
		t.Fatalf("snapshot read %q, want v1", old)
	}
	// Keys born after the snapshot are absent in it.
	if err := c.GetAt(root1, "snap.extra", nil); !ErrNotFound(err) {
		t.Fatalf("snap.extra in old snapshot: %v", err)
	}
	// Deleted keys remain visible in pre-delete snapshots.
	root2, _, _ := c.RootRef()
	c.Delete("snap.k")
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Get("snap.k", nil); !ErrNotFound(err) {
		t.Fatalf("deleted key resolves: %v", err)
	}
	var v2 string
	if err := c.GetAt(root2, "snap.k", &v2); err != nil || v2 != "v2" {
		t.Fatalf("pre-delete snapshot: %q %v", v2, err)
	}
	// Garbage root refs error cleanly.
	if err := c.GetAt("zzzz", "snap.k", nil); err == nil {
		t.Fatal("invalid snapshot ref accepted")
	}
}

// TestModuleAtConfigurableDepth: the kvs module loaded only at tree
// depth <= 1 of a 15-rank binary tree still serves leaf clients — their
// requests route upstream to the nearest loaded instance, conserving
// leaf-node resources as the paper describes.
func TestModuleAtConfigurableDepth(t *testing.T) {
	s, err := session.New(session.Options{
		Size: 15,
		Modules: []session.ModuleFactory{
			session.AtDepth(1, 2, session.ModuleFactory(Factory(ModuleConfig{}))),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Ranks 0..2 have the module; 3..14 do not.
	for r, want := range map[int]bool{0: true, 2: true, 3: false, 14: false} {
		if got := s.Broker(r).HasModule("kvs"); got != want {
			t.Fatalf("rank %d HasModule = %v, want %v", r, got, want)
		}
	}

	// A deep-leaf client (rank 14, depth 3) writes and reads through the
	// upstream instances.
	c := client(t, s, 14)
	if err := c.Put("depth.k", 123); err != nil {
		t.Fatal(err)
	}
	ver, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("version %d", ver)
	}
	// Another deep leaf in a different subtree reads it.
	c2 := client(t, s, 9)
	c2.WaitVersion(ver)
	var got int
	if err := c2.Get("depth.k", &got); err != nil || got != 123 {
		t.Fatalf("depth.k = %d, %v", got, err)
	}
}
