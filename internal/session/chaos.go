package session

import (
	"fluxgo/internal/transport"
)

// Chaos is the session-level fault-injection controller, available when
// the session is built with Options.FaultInjection. It owns a registry
// of every inter-broker link endpoint, wrapped in transport.Faulty, and
// exposes the failure vocabulary of the chaos tests:
//
//   - per-link loss, latency, duplication (SetLinkFaults)
//   - network partitions between rank sets (Partition / Heal)
//   - silent rank crashes, where peers observe no EOF (Crash), with
//     failure detection modelled separately (Sever)
//
// Faults are directional: SetLinkFaults(a, b, f) shapes only the a→b
// traffic. All randomized decisions derive from the session's FaultSeed,
// so a failing chaos run replays exactly from its seed.
type Chaos struct {
	s *Session

	// endpoints[owner][peer] holds the fault injectors carrying traffic
	// from owner toward peer (tree request, tree event, and ring planes
	// all register here). Guarded by s.mu: registration happens during
	// wiring and re-parenting, control during tests.
	endpoints map[int]map[int][]*transport.Faulty

	seed     int64
	seedStep int64
}

func newChaos(s *Session, seed int64) *Chaos {
	return &Chaos{s: s, endpoints: map[int]map[int][]*transport.Faulty{}, seed: seed}
}

// wrap installs fault injectors on both endpoints of a link between
// ranks a and b and registers them. Called under no lock from session
// wiring paths.
func (c *Chaos) wrap(a, b int, ca, cb transport.Conn) (transport.Conn, transport.Conn) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	fa := transport.NewFaulty(ca, c.nextSeedLocked())
	fb := transport.NewFaulty(cb, c.nextSeedLocked())
	c.registerLocked(a, b, fa)
	c.registerLocked(b, a, fb)
	return fa, fb
}

// nextSeedLocked derives the next per-endpoint RNG seed. Caller holds s.mu.
func (c *Chaos) nextSeedLocked() int64 {
	c.seedStep++
	return c.seed*1_000_003 + c.seedStep
}

func (c *Chaos) registerLocked(owner, peer int, f *transport.Faulty) {
	m := c.endpoints[owner]
	if m == nil {
		m = map[int][]*transport.Faulty{}
		c.endpoints[owner] = m
	}
	m[peer] = append(m[peer], f)
}

// SetLinkFaults applies f to all traffic flowing from rank `from` toward
// rank `to` (every overlay plane sharing that rank pair). Passing the
// zero Faults heals the direction.
func (c *Chaos) SetLinkFaults(from, to int, f transport.Faults) {
	c.s.mu.Lock()
	eps := append([]*transport.Faulty(nil), c.endpoints[from][to]...)
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(f)
	}
}

// SetAllFaults applies f to every link direction between live ranks —
// background noise for soak tests (e.g. 1% loss everywhere).
func (c *Chaos) SetAllFaults(f transport.Faults) {
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		if c.s.dead[owner] {
			continue
		}
		for peer, list := range peers {
			if c.s.dead[peer] {
				continue
			}
			eps = append(eps, list...)
		}
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(f)
	}
}

// Partition blackholes every link crossing the cut between group and the
// rest of the session, in both directions: the two sides observe mutual
// silence, exactly like a switch failure — no EOF, no error, nothing.
// Heal (or SetLinkFaults per direction) removes it.
func (c *Chaos) Partition(group ...int) {
	in := map[int]bool{}
	for _, r := range group {
		in[r] = true
	}
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		for peer, list := range peers {
			if in[owner] != in[peer] {
				eps = append(eps, list...)
			}
		}
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(transport.Faults{Blackhole: true})
	}
}

// Heal clears every fault on every link between live ranks. Links that
// touch crashed ranks stay blackholed: a dead peer does not come back.
func (c *Chaos) Heal() {
	c.SetAllFaults(transport.Faults{})
}

// Crash kills the broker at rank the hard way: every link touching it is
// blackholed first — in both directions — so its peers observe pure
// silence rather than the EOFs a graceful Kill produces, and then the
// broker stops. Until Sever models failure detection, nothing in the
// session learns of the death: in-flight RPCs through the rank are
// bounded only by their deadlines, which is precisely the window the
// no-hang guarantee is about.
func (c *Chaos) Crash(rank int) {
	if !c.s.markDead(rank) {
		return
	}
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for _, list := range c.endpoints[rank] {
		eps = append(eps, list...)
	}
	for owner, peers := range c.endpoints {
		if owner == rank {
			continue
		}
		eps = append(eps, peers[rank]...)
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(transport.Faults{Blackhole: true})
	}
	c.s.logf("session: chaos: rank %d crashed silently", rank)
	c.s.Broker(rank).Shutdown()
}

// Sever models the failure detector noticing a crashed rank: the peers'
// endpoints toward it are closed, surfacing EOF so their brokers run
// link-down cleanup — failing in-flight routed RPCs with EHOSTUNREACH
// and triggering re-parenting of the crashed rank's children.
func (c *Chaos) Sever(rank int) {
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		if owner == rank {
			continue
		}
		eps = append(eps, peers[rank]...)
		delete(peers, rank)
	}
	delete(c.endpoints, rank)
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	c.s.healRing(rank)
	c.s.logf("session: chaos: rank %d severed (failure detected)", rank)
}

// CrashAndSever is Crash immediately followed by Sever: a crash whose
// detection is instantaneous. Most tests separate the two to exercise
// the silent window in between.
func (c *Chaos) CrashAndSever(rank int) {
	c.Crash(rank)
	c.Sever(rank)
}
