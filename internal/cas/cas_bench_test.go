package cas

import (
	"fmt"
	"testing"
)

func BenchmarkPutValue(b *testing.B) {
	for _, size := range []int{8, 2048, 32768} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			s := NewStore(nil)
			val := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i) // defeat dedup so Put always stores
				val[1] = byte(i >> 8)
				val[2] = byte(i >> 16)
				s.Put(NewValue(val))
			}
		})
	}
}

func BenchmarkGetRaw(b *testing.B) {
	s := NewStore(nil)
	ref := s.Put(NewValue(make([]byte, 2048)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.GetRaw(ref); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkDirEncodeDecode(b *testing.B) {
	for _, entries := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			d := NewDir()
			for i := 0; i < entries; i++ {
				var r Ref
				r[0], r[1] = byte(i), byte(i>>8)
				d.Dir[fmt.Sprintf("key%06d", i)] = r
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc := d.Encode()
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
