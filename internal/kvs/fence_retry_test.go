package kvs

import (
	"testing"

	"fluxgo/internal/wire"
)

// TestFenceEntryDedup: retransmitted fence batches (what an RPC retry or
// a fault-duplicated link delivery produces) must not inflate the
// participant count or re-apply ops.
func TestFenceEntryDedup(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	h := c.Handle()

	if err := c.Put("dedup.key", 1); err != nil {
		t.Fatal(err)
	}
	ops := c.takePending()
	body := fenceBody{
		Name:    "dedupfence",
		NProcs:  2,
		Entries: []fenceEntry{{ID: "dedupfence/p0", Ops: ops}},
	}

	// The same entry delivered three times counts one participant: the
	// fence must stay incomplete (the RPCs park as pending requests, so
	// probe via fire-and-forget sends and the version counter).
	for i := 0; i < 3; i++ {
		if err := h.Send("kvs.fence", wire.NodeidAny, body); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := c.GetVersion(); err != nil || v != 0 {
		t.Fatalf("version = %d (err %v) after duplicate entries, want 0", v, err)
	}

	// A distinct second participant completes the fence exactly once.
	done := fenceBody{
		Name:    "dedupfence",
		NProcs:  2,
		Entries: []fenceEntry{{ID: "dedupfence/p1"}},
	}
	resp, err := h.RPC("kvs.fence", wire.NodeidAny, done)
	if err != nil {
		t.Fatal(err)
	}
	var root rootBody
	if err := resp.UnpackJSON(&root); err != nil {
		t.Fatal(err)
	}
	if root.Version != 1 {
		t.Fatalf("fence completed at version %d, want 1", root.Version)
	}
	var got int
	if err := c.Get("dedup.key", &got); err != nil || got != 1 {
		t.Fatalf("dedup.key = %d (err %v), want 1", got, err)
	}
}

// TestFenceReplyCache: a batch retried after the fence completed (its
// response was lost) is answered from the master's reply cache with the
// original result — it must not seed a phantom fence or advance the
// version again.
func TestFenceReplyCache(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	h := c.Handle()

	if err := c.Put("cached.key", "v"); err != nil {
		t.Fatal(err)
	}
	body := fenceBody{
		Name:    "cachedfence",
		NProcs:  1,
		Entries: []fenceEntry{{ID: "cachedfence/p0", Ops: c.takePending()}},
	}
	first, err := h.RPC("kvs.fence", wire.NodeidAny, body)
	if err != nil {
		t.Fatal(err)
	}
	var r1 rootBody
	if err := first.UnpackJSON(&r1); err != nil {
		t.Fatal(err)
	}

	// Retry of the identical batch after completion.
	second, err := h.RPC("kvs.fence", wire.NodeidAny, body)
	if err != nil {
		t.Fatal(err)
	}
	var r2 rootBody
	if err := second.UnpackJSON(&r2); err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatalf("replayed fence answered %+v, want cached %+v", r2, r1)
	}
	if v, _ := c.GetVersion(); v != r1.Version {
		t.Fatalf("version advanced to %d by replayed fence", v)
	}
}
