// Package session constructs and manages comms sessions: the set of CMB
// brokers, one per rank, wired into the three overlay planes of Fig. 1
// (event tree, request/response tree, rank-addressed ring).
//
// An in-process session backs one goroutine-driven broker per rank over
// the in-proc transport — the configuration used by the examples, tests,
// and the KAP evaluation harness. Interior broker failures self-heal:
// orphaned children re-attach to their nearest live ancestor and resync
// the event stream, per the paper's "can self-heal when interior nodes
// fail".
package session

import (
	"fmt"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
	"fluxgo/internal/obs"
	"fluxgo/internal/topo"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// ModuleFactory produces the comms-module instance to load at a rank, or
// nil to skip that rank. This realizes the paper's "module loaded at a
// configurable tree depth" policy.
type ModuleFactory func(rank, size int) broker.Module

// AtDepth restricts a module factory to ranks at tree depth <= maxDepth
// (for the given arity), the paper's knob for tuning a module's level of
// distribution or conserving node resources toward the leaves: requests
// from deeper ranks route upstream to the nearest loaded instance.
func AtDepth(maxDepth, arity int, f ModuleFactory) ModuleFactory {
	if arity == 0 {
		arity = 2
	}
	return func(rank, size int) broker.Module {
		tree, err := topo.NewTree(size, arity)
		if err != nil || tree.Depth(rank) > maxDepth {
			return nil
		}
		return f(rank, size)
	}
}

// Options configures a comms session.
type Options struct {
	Size         int
	Arity        int // tree fan-out; 0 means binary, as pictured in Fig. 1
	Clock        clock.Clock
	EventHistory int
	Modules      []ModuleFactory
	Log          func(format string, args ...any)
	// Codec routes every inter-broker link through the wire codec so each
	// hop pays a copy cost proportional to message size. Benchmarks use
	// this to make value-size effects observable in-process.
	Codec bool
	// FaultInjection wraps every inter-broker link in a controllable
	// fault injector (transport.Faulty) and enables the session's Chaos
	// controller. Chaos tests use it to drop, delay, duplicate, and
	// blackhole traffic on live links and to crash ranks silently.
	FaultInjection bool
	// FaultSeed makes every fault-injection decision reproducible. The
	// per-link RNG seeds derive deterministically from it.
	FaultSeed int64
	// RPCTimeout overrides the brokers' default RPC deadline
	// (broker.DefaultRPCTimeout when zero; negative disables it). Chaos
	// tests shorten it so liveness violations surface quickly.
	RPCTimeout time.Duration
	// SyncInterval overrides the brokers' membership anti-entropy period
	// (broker.DefaultSyncInterval when zero; negative disables it). Chaos
	// tests shorten it so membership convergence is quick after a heal.
	SyncInterval time.Duration
	// SessionID names the session for the cmb.join membership handshake;
	// empty defaults to "inproc".
	SessionID string
	// LogRecords overrides the brokers' structured log-ring capacity
	// (obs.DefaultLogRecords when zero; negative disables buffering).
	LogRecords int
	// Shards sets each broker's route-dispatch shard count (0 picks the
	// broker default). Benchmarks raise it to exercise contended flows.
	Shards int
	// BinaryBodies opts every broker's hot services into binary-coded
	// (codec v3) request/response bodies; the join handshake downgrades
	// any broker whose parent does not speak them.
	BinaryBodies bool
}

// Session is a running comms session.
type Session struct {
	opts    Options
	tree    topo.Tree
	brokers []*broker.Broker
	chaos   *Chaos // non-nil when Options.FaultInjection is set

	mu   debuglock.Mutex
	dead map[int]bool
	// view is the session's own membership view (rank space plus
	// tombstones); epoch is the membership epoch it will stamp into the
	// next live.join / live.leave event. Both are guarded by mu.
	view  *topo.View
	epoch uint32
	// memberMu serializes Grow/Shrink so each membership change gets a
	// unique, monotone epoch. Never held while holding mu.
	memberMu sync.Mutex
	// recorder, when non-nil, is the flight recorder chaos faults
	// trigger (guarded by mu; see EnableFlightRecorder).
	recorder *Recorder
}

// New builds, wires, and starts an in-process comms session.
func New(opts Options) (*Session, error) {
	if opts.Arity == 0 {
		opts.Arity = 2
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	tree, err := topo.NewTree(opts.Size, opts.Arity)
	if err != nil {
		return nil, err
	}
	if opts.SessionID == "" {
		opts.SessionID = "inproc"
	}
	s := &Session{
		opts:    opts,
		tree:    tree,
		brokers: make([]*broker.Broker, opts.Size),
		dead:    make(map[int]bool),
		view:    topo.NewView(tree),
		epoch:   1,
	}
	s.mu.SetClass("session.Session.mu")
	if opts.FaultInjection {
		s.chaos = newChaos(s, opts.FaultSeed)
	}

	for r := 0; r < opts.Size; r++ {
		b, err := broker.New(broker.Config{
			Rank:         r,
			Size:         opts.Size,
			Arity:        opts.Arity,
			Clock:        opts.Clock,
			EventHistory: opts.EventHistory,
			Log:          opts.Log,
			Reparent:     s.reparent,
			RPCTimeout:   opts.RPCTimeout,
			SyncInterval: opts.SyncInterval,
			SessionID:    opts.SessionID,
			LogRecords:   opts.LogRecords,
			Shards:       opts.Shards,
			BinaryBodies: opts.BinaryBodies,
			Grow:         s.hookGrow,
			Shrink:       s.hookShrink,
			Restart:      s.hookRestart,
		})
		if err != nil {
			return nil, err
		}
		s.brokers[r] = b
	}

	// Tree planes (request/response and event), parent <-> child.
	for r := 1; r < opts.Size; r++ {
		p := tree.Parent(r)
		if err := s.wireParentChild(p, r); err != nil {
			s.Close()
			return nil, err
		}
	}

	// Ring plane: rank r -> r+1 mod size.
	if opts.Size > 1 {
		ring, _ := topo.NewRing(opts.Size)
		for r := 0; r < opts.Size; r++ {
			next := ring.Next(r)
			out, in := s.pipeRanks(r, next)
			s.brokers[r].AttachConn(broker.LinkRingOut, out)
			s.brokers[next].AttachConn(broker.LinkRingIn, in)
		}
	}

	// Load modules, then start routing.
	for r := 0; r < opts.Size; r++ {
		for _, f := range opts.Modules {
			if m := f(r, opts.Size); m != nil {
				if err := s.brokers[r].LoadModule(m); err != nil {
					return nil, fmt.Errorf("session: load module at rank %d: %w", r, err)
				}
			}
		}
	}
	for _, b := range s.brokers {
		b.Start()
	}
	return s, nil
}

func rankID(r int) string { return fmt.Sprintf("rank:%d", r) }

// pipe creates one in-proc connection pair honouring the Codec option.
func (s *Session) pipe(aID, bID string) (transport.Conn, transport.Conn) {
	if s.opts.Codec {
		return transport.CodecPipe(aID, bID)
	}
	return transport.Pipe(aID, bID)
}

// pipeRanks creates one inter-broker connection pair between ranks a and
// b, wrapping both endpoints in fault injectors (and registering them
// with the chaos controller) when fault injection is enabled. All
// inter-broker links — initial wiring and re-parenting alike — go
// through here, so no link escapes chaos control.
func (s *Session) pipeRanks(a, b int) (transport.Conn, transport.Conn) {
	ca, cb := s.pipe(rankID(a), rankID(b))
	if s.chaos != nil {
		return s.chaos.wrap(a, b, ca, cb)
	}
	return ca, cb
}

// wireParentChild creates the two tree-plane pipes between p and c.
func (s *Session) wireParentChild(p, c int) error {
	treeP, treeC := s.pipeRanks(p, c)
	s.brokers[p].AttachConn(broker.LinkChildTree, treeP)
	s.brokers[c].AttachConn(broker.LinkParentTree, treeC)

	evP, evC := s.pipeRanks(p, c)
	s.brokers[p].AttachConn(broker.LinkChildEvent, evP)
	s.brokers[c].AttachConn(broker.LinkParentEvent, evC)
	// Child event links start gated at the parent; the initial resync
	// opens them (and replays anything already published). If it cannot
	// be delivered the gate would never open, so that is fatal.
	if err := evC.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
		return fmt.Errorf("session: resync %d -> %d: %w", c, p, err)
	}
	return nil
}

// Size returns the session size.
func (s *Session) Size() int { return s.opts.Size }

// Tree returns the session's tree topology.
func (s *Session) Tree() topo.Tree { return s.tree }

// Broker returns the broker at rank. The slice of brokers can grow at
// runtime, so the read is made under the session lock.
func (s *Session) Broker(rank int) *broker.Broker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brokers[rank]
}

// Handle attaches and returns a new handle at rank.
func (s *Session) Handle(rank int) *broker.Handle {
	return s.Broker(rank).NewHandle()
}

// Epoch returns the session's current membership epoch.
func (s *Session) Epoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// RankSpace returns the current rank-space size (tombstones included).
func (s *Session) RankSpace() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view.Size()
}

// LiveRanks returns the ranks that are current members: granted a rank,
// not departed. (A killed rank is a failed member, not a departed one,
// so it stays in this list; the live module reports it down.)
func (s *Session) LiveRanks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view.LiveRanks()
}

// Chaos returns the session's chaos controller, or nil unless the
// session was built with Options.FaultInjection.
func (s *Session) Chaos() *Chaos { return s.chaos }

// markDead records rank as dead, reporting whether it was alive before.
func (s *Session) markDead(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead[rank] {
		return false
	}
	s.dead[rank] = true
	return true
}

func (s *Session) logf(format string, args ...any) {
	s.logAt(obs.LevelNotice, format, args...)
}

// logAt records a session-lifecycle diagnostic both to the configured
// sink and into the root broker's structured log ring, so membership
// changes and chaos faults show up in flux dmesg next to the brokers'
// own records.
func (s *Session) logAt(level int, format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
	s.mu.Lock()
	var root *broker.Broker
	if len(s.brokers) > 0 {
		root = s.brokers[0]
	}
	s.mu.Unlock()
	if root != nil {
		root.Logger().Log(level, "session", format, args...)
	}
}

// Kill simulates the graceful failure of the broker at rank: all of its
// links close (peers observe EOF immediately and re-parent), and its
// orphaned children re-attach to the nearest live ancestor. For a crash
// with no failure notification — peers see only silence — use
// Chaos().Crash instead. Killing an already-dead rank is a no-op.
//
// Killing rank 0 is refused: root fail-over is NOT implemented — the
// paper likewise leaves eliminating the rank-0 single point of failure
// to future work — and a session without its event sequencer and (in
// the default configuration) its KVS master cannot commit or publish
// for the rest of its life. Tearing the whole session down is what
// Close is for.
func (s *Session) Kill(rank int) error {
	if rank == 0 {
		return fmt.Errorf("session: rank 0 cannot be killed — no root fail-over: event sequencing and KVS commits would be unavailable for the rest of this session's life (use Close to end the session)")
	}
	if !s.markDead(rank) {
		return nil
	}
	s.healRing(rank)
	s.Broker(rank).Shutdown()
	return nil
}

// Alive reports whether the broker at rank has not been killed.
func (s *Session) Alive(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.dead[rank]
}

// reparent re-attaches an orphaned broker to its nearest live ancestor.
// It is invoked by the broker when its parent links fail.
func (s *Session) reparent(b *broker.Broker, oldParent int) {
	s.mu.Lock()
	if s.dead[b.Rank()] {
		s.mu.Unlock()
		return
	}
	// Walk up from the dead parent to the nearest live ancestor.
	p := oldParent
	for p >= 0 && s.dead[p] {
		p = s.tree.Parent(p)
	}
	if p < 0 {
		s.mu.Unlock()
		if s.opts.Log != nil {
			s.opts.Log("session: rank %d orphaned with no live ancestor", b.Rank())
		}
		return
	}
	adopter := s.brokers[p]
	s.mu.Unlock()

	c := b.Rank()
	treeP, treeC := s.pipeRanks(p, c)
	evP, evC := s.pipeRanks(p, c)
	adopter.AttachConn(broker.LinkChildTree, treeP)
	adopter.AttachConn(broker.LinkChildEvent, evP)
	b.SetParent(treeC, evC, p)
	if s.opts.Log != nil {
		s.opts.Log("session: rank %d re-parented %d -> %d", c, oldParent, p)
	}
}

// Close shuts down every broker in the session.
func (s *Session) Close() {
	s.mu.Lock()
	brokers := append([]*broker.Broker(nil), s.brokers...)
	s.mu.Unlock()
	var wg sync.WaitGroup
	for r := range brokers {
		s.mu.Lock()
		deadAlready := s.dead[r]
		s.dead[r] = true
		s.mu.Unlock()
		if deadAlready {
			continue
		}
		wg.Add(1)
		go func(b *broker.Broker) {
			defer wg.Done()
			b.Shutdown()
		}(brokers[r])
	}
	wg.Wait()
}
