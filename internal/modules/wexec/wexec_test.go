package wexec

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			Factory(Config{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestBulkEchoAllRanks(t *testing.T) {
	const size = 7
	s := newSession(t, size)
	h := s.Handle(3)
	defer h.Close()

	n, err := Run(h, "job1", "echo", []string{"hello", "flux"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Fatalf("ntasks = %d, want %d", n, size)
	}
	res, err := Wait(ctx(t), h, "job1")
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "complete" || res.NTasks != size || res.NFailed != 0 {
		t.Fatalf("result %+v", res)
	}
	// Stdout captured in the KVS for every rank.
	for r := 0; r < size; r++ {
		stdout, _, exit, err := Output(h, "job1", r)
		if err != nil {
			t.Fatalf("rank %d output: %v", r, err)
		}
		if exit != 0 || !strings.Contains(stdout, "hello flux") {
			t.Fatalf("rank %d: exit %d stdout %q", r, exit, stdout)
		}
	}
}

func TestSubsetRanks(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(0)
	defer h.Close()
	targets := []int{1, 4, 6}
	n, err := Run(h, "subset", "hostname", nil, targets)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(targets) {
		t.Fatalf("ntasks = %d", n)
	}
	res, err := Wait(ctx(t), h, "subset")
	if err != nil {
		t.Fatal(err)
	}
	if res.NTasks != 3 {
		t.Fatalf("result %+v", res)
	}
	for _, r := range targets {
		stdout, _, _, err := Output(h, "subset", r)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("node%d", r)
		if !strings.Contains(stdout, want) {
			t.Fatalf("rank %d stdout %q, want %q", r, stdout, want)
		}
	}
	// Non-target rank has no record.
	if _, _, _, err := Output(h, "subset", 0); err == nil {
		t.Fatal("non-target rank has an exit code")
	}
}

func TestFailurePropagates(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(0)
	defer h.Close()
	if _, err := Run(h, "failjob", "fail", []string{"3"}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := Wait(ctx(t), h, "failjob")
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "failed" || res.NFailed != 2 {
		t.Fatalf("result %+v", res)
	}
	_, stderr, exit, err := Output(h, "failjob", 1)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 3 || !strings.Contains(stderr, "simulated failure") {
		t.Fatalf("exit %d stderr %q", exit, stderr)
	}
}

func TestUnknownProgramExits127(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	Run(h, "nope", "doesnotexist", nil, nil)
	res, err := Wait(ctx(t), h, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "failed" {
		t.Fatalf("result %+v", res)
	}
	_, stderr, exit, _ := Output(h, "nope", 0)
	if exit != 127 || !strings.Contains(stderr, "no such program") {
		t.Fatalf("exit %d stderr %q", exit, stderr)
	}
}

func TestKillBlockedJob(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(0)
	defer h.Close()
	if _, err := Run(h, "blocked", "block", nil, nil); err != nil {
		t.Fatal(err)
	}
	// The job cannot finish on its own; kill it.
	time.Sleep(50 * time.Millisecond)
	if err := Kill(h, "blocked"); err != nil {
		t.Fatal(err)
	}
	res, err := Wait(ctx(t), h, "blocked")
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "failed" || res.NTasks != 3 {
		t.Fatalf("result %+v", res)
	}
	_, stderr, exit, _ := Output(h, "blocked", 1)
	if exit != 143 || !strings.Contains(stderr, "terminated by signal") {
		t.Fatalf("exit %d stderr %q", exit, stderr)
	}
}

func TestValidation(t *testing.T) {
	s := newSession(t, 2)
	h := s.Handle(0)
	defer h.Close()
	if _, err := Run(h, "", "echo", nil, nil); err == nil {
		t.Fatal("empty jobid accepted")
	}
	if _, err := Run(h, "j", "", nil, nil); err == nil {
		t.Fatal("empty program accepted")
	}
	if _, err := Run(h, "j", "echo", nil, []int{99}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestCustomProgramRegistry(t *testing.T) {
	progs := BuiltinPrograms()
	progs["rankdouble"] = func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int {
		fmt.Fprintf(stdout, "%d", rank*2)
		return 0
	}
	s, err := session.New(session.Options{
		Size: 3,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			Factory(Config{Programs: progs}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handle(0)
	defer h.Close()
	Run(h, "custom", "rankdouble", nil, []int{2})
	if _, err := Wait(ctx(t), h, "custom"); err != nil {
		t.Fatal(err)
	}
	stdout, _, _, err := Output(h, "custom", 2)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "4" {
		t.Fatalf("stdout %q, want 4", stdout)
	}
}
