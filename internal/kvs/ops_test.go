package kvs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fluxgo/internal/cas"
)

func TestValidateKey(t *testing.T) {
	good := []string{"a", "a.b", "a.b.c", "resource.rank.0"}
	for _, k := range good {
		if err := ValidateKey(k); err != nil {
			t.Errorf("ValidateKey(%q) = %v", k, err)
		}
	}
	bad := []string{"", ".", "a.", ".a", "a..b"}
	for _, k := range bad {
		if err := ValidateKey(k); err == nil {
			t.Errorf("ValidateKey(%q) accepted", k)
		}
	}
}

// putVal stores a JSON value object and returns its hex ref.
func putVal(store *cas.Store, js string) string {
	return store.Put(cas.NewValue([]byte(js))).String()
}

// lookup walks the hash tree, mirroring the paper's lookup example.
func lookup(t *testing.T, store *cas.Store, root cas.Ref, key string) (*cas.Object, bool) {
	t.Helper()
	if root.IsZero() {
		return nil, false
	}
	ref := root
	for _, part := range splitKey(key) {
		obj, ok := store.Get(ref)
		if !ok || obj.Kind != cas.KindDir {
			return nil, false
		}
		next, ok := obj.Dir[part]
		if !ok {
			return nil, false
		}
		ref = next
	}
	obj, ok := store.Get(ref)
	return obj, ok
}

func TestApplyOpsPaperExample(t *testing.T) {
	// The paper's worked example: store a.b.c = 42, then update to 43,
	// verifying each update yields a new root reference.
	store := cas.NewStore(nil)
	root1, err := ApplyOps(store, cas.Ref{}, []Op{{Key: "a.b.c", Ref: putVal(store, "42")}}, false)
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := lookup(t, store, root1, "a.b.c")
	if !ok || string(obj.Value) != "42" {
		t.Fatalf("lookup a.b.c = %v,%v, want 42", obj, ok)
	}

	root2, err := ApplyOps(store, root1, []Op{{Key: "a.b.c", Ref: putVal(store, "43")}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if root1 == root2 {
		t.Fatal("update did not produce a new root reference")
	}
	obj, _ = lookup(t, store, root2, "a.b.c")
	if string(obj.Value) != "43" {
		t.Fatalf("after update, a.b.c = %s", obj.Value)
	}
	// The old root still resolves to the old value: snapshots coexist,
	// which is what makes the root switch atomic.
	obj, _ = lookup(t, store, root1, "a.b.c")
	if string(obj.Value) != "42" {
		t.Fatalf("old snapshot mutated: a.b.c = %s", obj.Value)
	}
}

func TestApplyOpsSiblings(t *testing.T) {
	store := cas.NewStore(nil)
	root, err := ApplyOps(store, cas.Ref{}, []Op{
		{Key: "a.x", Ref: putVal(store, "1")},
		{Key: "a.y", Ref: putVal(store, "2")},
		{Key: "b", Ref: putVal(store, "3")},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a.x": "1", "a.y": "2", "b": "3"} {
		obj, ok := lookup(t, store, root, key)
		if !ok || string(obj.Value) != want {
			t.Errorf("%s = %v, want %s", key, obj, want)
		}
	}
}

func TestApplyOpsDelete(t *testing.T) {
	store := cas.NewStore(nil)
	root, _ := ApplyOps(store, cas.Ref{}, []Op{
		{Key: "a.b", Ref: putVal(store, "1")},
		{Key: "c", Ref: putVal(store, "2")},
	}, false)
	root2, err := ApplyOps(store, root, []Op{{Key: "a.b", Delete: true}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lookup(t, store, root2, "a.b"); ok {
		t.Fatal("deleted key still resolves")
	}
	// Empty directory "a" must be pruned.
	if _, ok := lookup(t, store, root2, "a"); ok {
		t.Fatal("empty parent directory survived")
	}
	if obj, ok := lookup(t, store, root2, "c"); !ok || string(obj.Value) != "2" {
		t.Fatal("unrelated key lost")
	}
}

func TestApplyOpsDeleteEverything(t *testing.T) {
	store := cas.NewStore(nil)
	root, _ := ApplyOps(store, cas.Ref{}, []Op{{Key: "only", Ref: putVal(store, "1")}}, false)
	root2, err := ApplyOps(store, root, []Op{{Key: "only", Delete: true}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !root2.IsZero() {
		t.Fatalf("empty store root = %s, want zero", root2.Short())
	}
}

func TestApplyOpsValueOverwrittenByDir(t *testing.T) {
	store := cas.NewStore(nil)
	root, _ := ApplyOps(store, cas.Ref{}, []Op{{Key: "a", Ref: putVal(store, "1")}}, false)
	root2, err := ApplyOps(store, root, []Op{{Key: "a.b", Ref: putVal(store, "2")}}, false)
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := lookup(t, store, root2, "a.b")
	if !ok || string(obj.Value) != "2" {
		t.Fatal("nested write under former value failed")
	}
}

func TestApplyOpsDuplicateKeyLastWins(t *testing.T) {
	store := cas.NewStore(nil)
	root, err := ApplyOps(store, cas.Ref{}, []Op{
		{Key: "k", Ref: putVal(store, "1")},
		{Key: "k", Ref: putVal(store, "2")},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := lookup(t, store, root, "k")
	if string(obj.Value) != "2" {
		t.Fatalf("k = %s, want 2 (last write wins)", obj.Value)
	}
}

func TestApplyOpsInvalid(t *testing.T) {
	store := cas.NewStore(nil)
	if _, err := ApplyOps(store, cas.Ref{}, []Op{{Key: "", Ref: putVal(store, "1")}}, false); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := ApplyOps(store, cas.Ref{}, []Op{{Key: "k", Ref: "nothex"}}, false); err == nil {
		t.Fatal("bad ref accepted")
	}
}

// Property: the final root is independent of the order in which ops on
// distinct keys are applied — the hash-tree determinism the fence
// protocol relies on (batches may merge in any order).
func TestApplyOpsOrderIndependenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	letters := []string{"a", "b", "c", "d"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%12) + 1
		store := cas.NewStore(nil)
		seen := map[string]bool{}
		var ops []Op
		for i := 0; i < count; i++ {
			depth := r.Intn(3) + 1
			key := ""
			for d := 0; d < depth; d++ {
				if d > 0 {
					key += "."
				}
				key += letters[r.Intn(len(letters))]
			}
			// Ensure key-distinctness and prefix-freedom: a key that is a
			// path prefix of another would make order matter by design.
			key = key + "." + "k" + itoa(i)
			if seen[key] {
				continue
			}
			seen[key] = true
			ops = append(ops, Op{Key: key, Ref: putVal(store, `"v`+itoa(i)+`"`)})
		}
		if len(ops) == 0 {
			return true
		}
		root1, err1 := ApplyOps(store, cas.Ref{}, ops, false)
		shuffled := append([]Op(nil), ops...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		root2, err2 := ApplyOps(store, cas.Ref{}, shuffled, false)
		return err1 == nil && err2 == nil && root1 == root2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Property: incremental application (one op at a time) reaches the same
// root as batch application for distinct keys.
func TestApplyOpsIncrementalEquivalenceQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%10) + 1
		store := cas.NewStore(nil)
		var ops []Op
		for i := 0; i < count; i++ {
			key := "d" + itoa(r.Intn(4)) + ".k" + itoa(i)
			ops = append(ops, Op{Key: key, Ref: putVal(store, itoa(r.Intn(1000)))})
		}
		batch, err := ApplyOps(store, cas.Ref{}, ops, false)
		if err != nil {
			return false
		}
		root := cas.Ref{}
		for _, op := range ops {
			root, err = ApplyOps(store, root, []Op{op}, false)
			if err != nil {
				return false
			}
		}
		return root == batch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
