package wire

import "sync"

// Message ownership and pooling.
//
// The hot path of an interior broker is: read a frame off one link,
// decode it, push/pop a route hop, and write it to exactly one other
// link. Allocating a fresh Message, topic/route strings, and a payload
// copy for every such hop dominated the codec profile, so decode and
// encode are pooled:
//
//   - Get returns a recycled *Message; UnmarshalPooled decodes into one
//     and records the receive buffer as owned by the message.
//   - A broker that forwards a message to exactly one transport link
//     arms it with Handoff; the link's writer calls Release after the
//     frame is encoded, returning buffer and Message to their pools.
//   - Everything else (events fanned out to several links, messages
//     delivered to modules or handles, messages held across an RPC)
//     is simply never armed: Release is a no-op and the message falls
//     to the garbage collector exactly as before this scheme existed.
//   - A consumer that wants to retain the payload past the handler
//     return calls Detach, which copies the payload out of the shared
//     receive buffer and severs pool ownership.
//
// The invariant, stated once: after arming a message with Handoff, the
// sender must not touch it again; after Release returns, neither the
// Message nor its Payload may be referenced. Double release is a silent
// no-op in normal builds (armed is cleared) and panics under the
// debuglock build tag, mirroring the lock-order checker.

// maxPooledBuf bounds the receive/encode buffers kept in the pool;
// oversized frames (bulk KVS objects) are allocated and dropped rather
// than pinning megabytes in the free list.
const maxPooledBuf = 64 << 10

var (
	msgPool = sync.Pool{New: func() any { return new(Message) }}
	bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}
)

// Get returns a zeroed Message from the free list. The message is
// recycled only if it is later armed with Handoff and Released; an
// unreleased message is collected normally.
func Get() *Message {
	m := msgPool.Get().(*Message)
	m.pooled = true
	m.guardArm()
	return m
}

// GetBuf returns a pooled byte slice of length n (its contents are
// undefined). Pair with PutBuf, or hand it to UnmarshalPooled which
// ties its lifetime to the returned message.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		bufPool.Put(bp)
		return make([]byte, n)
	}
	return (*bp)[:n]
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Handoff arms the message for release by the transport writer that
// encodes it. Call it immediately before handing the message to a
// single outgoing link; the caller must not touch the message again.
func (m *Message) Handoff() {
	m.armed = true
	m.guardArm()
}

// Release recycles an armed message: its receive buffer (if pooled)
// and, when the Message itself came from Get, the Message too. On a
// message that was never armed it is a no-op, so transport writers call
// it unconditionally after encoding.
func (m *Message) Release() {
	if !m.armed {
		// Already-released messages land here; the debuglock build
		// panics instead of letting the bug pass silently.
		m.guardIdleRelease()
		return
	}
	m.armed = false
	buf := m.buf
	pooled := m.pooled
	keepRoute := m.Route
	*m = Message{}
	m.guardMarkReleased()
	if buf != nil {
		PutBuf(buf)
	}
	if pooled {
		// Keep the route backing array across recycles; the strings it
		// held are dropped so they do not pin their string block.
		if cap(keepRoute) > 0 && cap(keepRoute) <= 16 {
			clear(keepRoute[:cap(keepRoute)])
			m.routeScratch = keepRoute[:0]
		}
		msgPool.Put(m)
	}
}

// Detach copies the payload out of the shared receive buffer and severs
// pool ownership, making the message an ordinary GC-managed value that
// is safe to retain indefinitely. It returns m for chaining.
func (m *Message) Detach() *Message {
	if len(m.Payload) > 0 && m.buf != nil {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	m.buf = nil
	m.pooled = false
	m.armed = false
	return m
}
