// Package session constructs and manages comms sessions: the set of CMB
// brokers, one per rank, wired into the three overlay planes of Fig. 1
// (event tree, request/response tree, rank-addressed ring).
//
// An in-process session backs one goroutine-driven broker per rank over
// the in-proc transport — the configuration used by the examples, tests,
// and the KAP evaluation harness. Interior broker failures self-heal:
// orphaned children re-attach to their nearest live ancestor and resync
// the event stream, per the paper's "can self-heal when interior nodes
// fail".
package session

import (
	"fmt"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/topo"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// ModuleFactory produces the comms-module instance to load at a rank, or
// nil to skip that rank. This realizes the paper's "module loaded at a
// configurable tree depth" policy.
type ModuleFactory func(rank, size int) broker.Module

// AtDepth restricts a module factory to ranks at tree depth <= maxDepth
// (for the given arity), the paper's knob for tuning a module's level of
// distribution or conserving node resources toward the leaves: requests
// from deeper ranks route upstream to the nearest loaded instance.
func AtDepth(maxDepth, arity int, f ModuleFactory) ModuleFactory {
	if arity == 0 {
		arity = 2
	}
	return func(rank, size int) broker.Module {
		tree, err := topo.NewTree(size, arity)
		if err != nil || tree.Depth(rank) > maxDepth {
			return nil
		}
		return f(rank, size)
	}
}

// Options configures a comms session.
type Options struct {
	Size         int
	Arity        int // tree fan-out; 0 means binary, as pictured in Fig. 1
	Clock        clock.Clock
	EventHistory int
	Modules      []ModuleFactory
	Log          func(format string, args ...any)
	// Codec routes every inter-broker link through the wire codec so each
	// hop pays a copy cost proportional to message size. Benchmarks use
	// this to make value-size effects observable in-process.
	Codec bool
}

// Session is a running comms session.
type Session struct {
	opts    Options
	tree    topo.Tree
	brokers []*broker.Broker

	mu   sync.Mutex
	dead map[int]bool
}

// New builds, wires, and starts an in-process comms session.
func New(opts Options) (*Session, error) {
	if opts.Arity == 0 {
		opts.Arity = 2
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	tree, err := topo.NewTree(opts.Size, opts.Arity)
	if err != nil {
		return nil, err
	}
	s := &Session{
		opts:    opts,
		tree:    tree,
		brokers: make([]*broker.Broker, opts.Size),
		dead:    make(map[int]bool),
	}

	for r := 0; r < opts.Size; r++ {
		b, err := broker.New(broker.Config{
			Rank:         r,
			Size:         opts.Size,
			Arity:        opts.Arity,
			Clock:        opts.Clock,
			EventHistory: opts.EventHistory,
			Log:          opts.Log,
			Reparent:     s.reparent,
		})
		if err != nil {
			return nil, err
		}
		s.brokers[r] = b
	}

	// Tree planes (request/response and event), parent <-> child.
	for r := 1; r < opts.Size; r++ {
		p := tree.Parent(r)
		s.wireParentChild(p, r)
	}

	// Ring plane: rank r -> r+1 mod size.
	if opts.Size > 1 {
		ring, _ := topo.NewRing(opts.Size)
		for r := 0; r < opts.Size; r++ {
			next := ring.Next(r)
			out, in := s.pipe(rankID(r), rankID(next))
			s.brokers[r].AttachConn(broker.LinkRingOut, out)
			s.brokers[next].AttachConn(broker.LinkRingIn, in)
		}
	}

	// Load modules, then start routing.
	for r := 0; r < opts.Size; r++ {
		for _, f := range opts.Modules {
			if m := f(r, opts.Size); m != nil {
				if err := s.brokers[r].LoadModule(m); err != nil {
					return nil, fmt.Errorf("session: load module at rank %d: %w", r, err)
				}
			}
		}
	}
	for _, b := range s.brokers {
		b.Start()
	}
	return s, nil
}

func rankID(r int) string { return fmt.Sprintf("rank:%d", r) }

// pipe creates one in-proc connection pair honouring the Codec option.
func (s *Session) pipe(aID, bID string) (transport.Conn, transport.Conn) {
	if s.opts.Codec {
		return transport.CodecPipe(aID, bID)
	}
	return transport.Pipe(aID, bID)
}

// wireParentChild creates the two tree-plane pipes between p and c.
func (s *Session) wireParentChild(p, c int) {
	treeP, treeC := s.pipe(rankID(p), rankID(c))
	s.brokers[p].AttachConn(broker.LinkChildTree, treeP)
	s.brokers[c].AttachConn(broker.LinkParentTree, treeC)

	evP, evC := s.pipe(rankID(p), rankID(c))
	s.brokers[p].AttachConn(broker.LinkChildEvent, evP)
	s.brokers[c].AttachConn(broker.LinkParentEvent, evC)
	// Child event links start gated at the parent; the initial resync
	// opens them (and replays anything already published).
	evC.Send(&wire.Message{Type: wire.Control, Topic: "cmb.resync", Seq: 0})
}

// Size returns the session size.
func (s *Session) Size() int { return s.opts.Size }

// Tree returns the session's tree topology.
func (s *Session) Tree() topo.Tree { return s.tree }

// Broker returns the broker at rank.
func (s *Session) Broker(rank int) *broker.Broker { return s.brokers[rank] }

// Handle attaches and returns a new handle at rank.
func (s *Session) Handle(rank int) *broker.Handle {
	return s.brokers[rank].NewHandle()
}

// Kill simulates the failure of the broker at rank: all of its links
// drop, and its orphaned children re-parent to the nearest live
// ancestor. Killing rank 0 is permitted but the session loses its event
// sequencer (root fail-over is future work in the paper, too).
func (s *Session) Kill(rank int) {
	s.mu.Lock()
	if s.dead[rank] {
		s.mu.Unlock()
		return
	}
	s.dead[rank] = true
	s.mu.Unlock()
	s.brokers[rank].Shutdown()
}

// Alive reports whether the broker at rank has not been killed.
func (s *Session) Alive(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.dead[rank]
}

// reparent re-attaches an orphaned broker to its nearest live ancestor.
// It is invoked by the broker when its parent links fail.
func (s *Session) reparent(b *broker.Broker, oldParent int) {
	s.mu.Lock()
	if s.dead[b.Rank()] {
		s.mu.Unlock()
		return
	}
	// Walk up from the dead parent to the nearest live ancestor.
	p := oldParent
	for p >= 0 && s.dead[p] {
		p = s.tree.Parent(p)
	}
	if p < 0 {
		s.mu.Unlock()
		if s.opts.Log != nil {
			s.opts.Log("session: rank %d orphaned with no live ancestor", b.Rank())
		}
		return
	}
	s.mu.Unlock()

	adopter := s.brokers[p]
	c := b.Rank()
	treeP, treeC := s.pipe(rankID(p), rankID(c))
	evP, evC := s.pipe(rankID(p), rankID(c))
	adopter.AttachConn(broker.LinkChildTree, treeP)
	adopter.AttachConn(broker.LinkChildEvent, evP)
	b.SetParent(treeC, evC, p)
	if s.opts.Log != nil {
		s.opts.Log("session: rank %d re-parented %d -> %d", c, oldParent, p)
	}
}

// Close shuts down every broker in the session.
func (s *Session) Close() {
	var wg sync.WaitGroup
	for r := range s.brokers {
		s.mu.Lock()
		deadAlready := s.dead[r]
		s.dead[r] = true
		s.mu.Unlock()
		if deadAlready {
			continue
		}
		wg.Add(1)
		go func(b *broker.Broker) {
			defer wg.Done()
			b.Shutdown()
		}(s.brokers[r])
	}
	wg.Wait()
}
