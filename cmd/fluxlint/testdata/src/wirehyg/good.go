package wirehyg

import "fixture.example/wire"

const svc = wire.ServiceCMB

func namedTopic() *wire.Message {
	return &wire.Message{Type: wire.Event, Topic: wire.TopicPing}
}

func namedConversion() wire.Type {
	return wire.Control
}

// prose mentioning the service does not match the topic shape.
func proseIsFine() string {
	return "cmb overlay unreachable"
}

// struct tags are not wire strings.
type tagged struct {
	Field string `json:"cmb.field"`
}

// Payload handling that is fine: detach before retaining, copy the
// bytes out, or keep the reference local to the handler.

func detachThenRetain(h *holder, m *wire.Message) {
	m.Detach()
	h.data = m.Payload
}

func detachAfterRetain(h *holder, m *wire.Message) {
	h.data = m.Payload
	m.Detach() // anywhere in the handler vouches for the retention
}

func copyOut(m *wire.Message) []byte {
	return append([]byte(nil), m.Payload...) // spread form copies bytes
}

func localUse(m *wire.Message) int {
	data := m.Payload // plain local; does not outlive the handler
	return len(data)
}

func notTheParam(h *holder, m *wire.Message) {
	other := &wire.Message{}
	h.data = other.Payload // not a pooled receive buffer
}
