package kap

import (
	"testing"
	"time"
)

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Ranks: 0, Producers: 1},
		{Ranks: 2, Producers: 99},
		{Ranks: 2, ProcsPerRank: 1, Consumers: 99},
		{Ranks: 2}, // no roles
		{Ranks: 2, ProcsPerRank: 1, Consumers: 1}, // consumers, no objects
	}
	for i, p := range bad {
		if _, err := Run(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestRunProducersOnly(t *testing.T) {
	res, err := Run(Params{
		Ranks:           4,
		ProcsPerRank:    2,
		Producers:       8,
		ValueSize:       8,
		PutsPerProducer: 2,
		NoCodec:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Producer <= 0 || res.Sync <= 0 {
		t.Fatalf("phases: %+v", res)
	}
	if res.Consumer != 0 {
		t.Fatalf("consumer phase ran with no consumers: %v", res.Consumer)
	}
}

func TestRunFullyPopulated(t *testing.T) {
	// The paper's most revealing case: producer and consumer counts both
	// equal the total process count.
	const ranks, ppr = 4, 4
	total := ranks * ppr
	res, err := Run(Params{
		Ranks:        ranks,
		ProcsPerRank: ppr,
		Producers:    total,
		Consumers:    total,
		ValueSize:    32,
		AccessCount:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]time.Duration{
		"setup": res.Setup, "producer": res.Producer,
		"sync": res.Sync, "consumer": res.Consumer,
	} {
		if d <= 0 {
			t.Errorf("%s phase latency = %v", name, d)
		}
	}
	if res.Total < res.Producer+res.Sync {
		t.Error("total less than sum of serial phases")
	}
}

func TestRunRedundantValues(t *testing.T) {
	res, err := Run(Params{
		Ranks:        4,
		ProcsPerRank: 2,
		Producers:    8,
		Consumers:    8,
		ValueSize:    64,
		Redundant:    true,
		AccessCount:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sync <= 0 {
		t.Fatal("no sync latency")
	}
}

func TestRunMultiDirLayout(t *testing.T) {
	res, err := Run(Params{
		Ranks:           4,
		ProcsPerRank:    4,
		Producers:       16,
		Consumers:       16,
		PutsPerProducer: 4, // 64 objects -> several dirs of 16
		DirFanout:       16,
		AccessCount:     8,
		NoCodec:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumer <= 0 {
		t.Fatal("no consumer latency")
	}
}

func TestRunStride(t *testing.T) {
	if _, err := Run(Params{
		Ranks:        2,
		ProcsPerRank: 2,
		Producers:    4,
		Consumers:    4,
		Stride:       3,
		AccessCount:  4,
		NoCodec:      true,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepConsumers(t *testing.T) {
	// One deep consumer must still read every object successfully.
	res, err := Run(Params{
		Ranks:         8,
		ProcsPerRank:  2,
		Producers:     8,
		Consumers:     1,
		DeepConsumers: true,
		AccessCount:   8,
		NoCodec:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumer <= 0 {
		t.Fatal("no consumer latency recorded")
	}
}

func TestKeyLayout(t *testing.T) {
	p := &Params{}
	if keyFor(p, 5) != "kap.key5" {
		t.Fatalf("flat key = %s", keyFor(p, 5))
	}
	p.DirFanout = 128
	if keyFor(p, 5) != "kap.dir0.key5" || keyFor(p, 200) != "kap.dir1.key200" {
		t.Fatalf("dir keys: %s %s", keyFor(p, 5), keyFor(p, 200))
	}
}

func TestValueUniquenessAndRedundancy(t *testing.T) {
	u := &Params{ValueSize: 16}
	r := &Params{ValueSize: 16, Redundant: true}
	if string(valueFor(u, 1)) == string(valueFor(u, 2)) {
		t.Fatal("unique values collide")
	}
	if string(valueFor(r, 1)) != string(valueFor(r, 2)) {
		t.Fatal("redundant values differ")
	}
	if len(valueFor(u, 1)) != 16 {
		t.Fatal("value size wrong")
	}
}
