package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// errShutdown is returned by handle operations once the broker or the
// handle has shut down.
var errShutdown = errors.New("broker: shutting down")

// ErrShutdown reports whether err indicates broker/handle shutdown.
func ErrShutdown(err error) bool { return errors.Is(err, errShutdown) }

// Handle is a program's connection to its local broker — the analogue of
// a flux_t handle in the C prototype. Comms modules, tools, and
// application run-times all use Handles for RPCs, events, and responses.
// A Handle is safe for concurrent use.
type Handle struct {
	b        *Broker
	id       string
	link     *link
	inbox    *Mailbox[*wire.Message]
	nextTag  atomic.Uint64
	closedCh chan struct{}

	mu       debuglock.Mutex
	pending  map[uint64]chan *wire.Message
	subs     []*Subscription
	prefixes []string
	closed   bool
}

// NewHandle attaches a new in-process handle to the broker.
func (b *Broker) NewHandle() *Handle {
	h := &Handle{
		b:        b,
		id:       fmt.Sprintf("h:%d.%d", b.cfg.Rank, b.handleSeq.Add(1)),
		inbox:    NewMailbox[*wire.Message](),
		closedCh: make(chan struct{}),
		pending:  make(map[uint64]chan *wire.Message),
	}
	h.mu.SetClass("broker.Handle.mu")
	h.link = &link{kind: linkHandle, id: h.id, h: h}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		h.shutdown()
		return h
	}
	b.links[h.id] = h.link
	b.publishLinksLocked()
	b.mu.Unlock()
	go h.demux()
	return h
}

// ID returns the handle's broker-unique identity string.
func (h *Handle) ID() string { return h.id }

// Rank returns the local broker's rank.
func (h *Handle) Rank() int { return h.b.cfg.Rank }

// Size returns the comms session size.
func (h *Handle) Size() int { return h.b.cfg.Size }

// Clock returns the broker's time source.
func (h *Handle) Clock() clock.Clock { return h.b.cfg.Clock }

// Broker returns the handle's broker (for introspection).
func (h *Handle) Broker() *Broker { return h.b }

// BinaryBodies reports whether this broker's hot services should encode
// payloads with the compact binary body codec (wire.BinWriter) instead
// of JSON. Decoders sniff per message, so the setting only gates the
// encode side.
func (h *Handle) BinaryBodies() bool { return h.b.binBodies.Load() }

// LiveSize returns the number of live ranks in the broker's current
// membership view (Size is the founding size and never changes).
func (h *Handle) LiveSize() int { return h.b.LiveSize() }

// Epoch returns the broker's current membership epoch.
func (h *Handle) Epoch() uint32 { return h.b.Epoch() }

// RankSpace returns the broker's current rank-space size (departed
// ranks included).
func (h *Handle) RankSpace() int { return h.b.RankSpace() }

// JoinedLate reports whether the broker joined after session start.
func (h *Handle) JoinedLate() bool { return h.b.JoinedLate() }

// Log records a leveled, subsystem-tagged diagnostic in the broker's
// structured log ring (the telemetry plane behind flux dmesg). sub
// names the subsystem, normally the module's service name.
func (h *Handle) Log(level int, sub, format string, args ...any) {
	h.b.log.Log(level, sub, format, args...)
}

// Logger exposes the broker's leveled logger for modules that gate
// expensive diagnostics on Logger().Enabled(level).
func (h *Handle) Logger() *obs.Logger { return h.b.log }

// Logf routes a diagnostic line to the broker's log plane at warning
// severity — the compatibility shim for module code reporting
// background failures (a dropped event publish, a failed upstream
// reduction) without its own logging plumbing. New code should use Log
// with an explicit level and subsystem.
func (h *Handle) Logf(format string, args ...any) {
	h.b.log.Warnf("module", format, args...)
}

// deliver is called by the broker loop to hand a message to the handle.
// It reports false once the handle has shut down.
//
// Responses are matched to their pending RPC right here instead of
// detouring through the inbox pump and demux goroutine: the channel is
// buffered (capacity 1) and each tag has exactly one response in flight,
// so the send below never blocks a dispatch shard. Cutting those two
// goroutine hops roughly halves the wakeups on the RPC critical path.
func (h *Handle) deliver(m *wire.Message) bool {
	if m.Type == wire.Response {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return false
		}
		ch, ok := h.pending[m.Seq]
		if ok {
			delete(h.pending, m.Seq)
		}
		h.mu.Unlock()
		if ok {
			ch <- m
		}
		return true
	}
	return h.inbox.Push(m)
}

// wantsEvent reports whether any subscription matches topic.
func (h *Handle) wantsEvent(topic string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.prefixes {
		if matchTopic(p, topic) {
			return true
		}
	}
	return false
}

// demux dispatches inbound messages to pending RPCs and subscriptions.
func (h *Handle) demux() {
	for m := range h.inbox.Out() {
		switch m.Type {
		case wire.Response:
			h.mu.Lock()
			ch, ok := h.pending[m.Seq]
			if ok {
				delete(h.pending, m.Seq)
			}
			h.mu.Unlock()
			if ok {
				ch <- m
			}
		case wire.Event:
			h.mu.Lock()
			var targets []*Subscription
			for _, s := range h.subs {
				if matchTopic(s.prefix, m.Topic) {
					targets = append(targets, s)
				}
			}
			h.mu.Unlock()
			for _, s := range targets {
				s.mb.Push(m)
			}
		default:
			// Handles do not serve requests; drop anything else.
		}
	}
}

// DefaultRPCTimeout is the deadline applied to RPCs when neither the
// call (RPCOptions.Timeout) nor the broker (Config.RPCTimeout) sets one.
// It is deliberately generous: it is a no-hang backstop for faults that
// drop no link (silent crashes, partitions), not a latency target —
// link-drop failures surface much sooner via EHOSTUNREACH.
const DefaultRPCTimeout = 60 * time.Second

// RPCOptions tunes the deadline/retry behaviour of one RPC.
type RPCOptions struct {
	// Timeout bounds each attempt. 0 uses the broker's configured
	// default (Config.RPCTimeout, itself defaulting to
	// DefaultRPCTimeout); negative disables the deadline.
	Timeout time.Duration
	// Retries is how many additional attempts are made after a transient
	// failure (EHOSTUNREACH on a dropped route, or a deadline expiry).
	// Retries MUST only be requested for idempotent operations — kvs
	// gets, version queries, deduplicated fence entries — because the
	// failed attempt may in fact have been executed.
	Retries int
	// Backoff is the delay before the first retry; it doubles on each
	// subsequent retry (capped at 2s) and is jittered to [d/2, d] so
	// synchronized failures do not retry in lockstep. 0 defaults to 20ms.
	Backoff time.Duration
}

// maxRetryBackoff caps the exponential retry delay.
const maxRetryBackoff = 2 * time.Second

// IsTransient reports whether err is a transient routing failure — a
// deadline expiry, an unreachable hop, or a stale-epoch rejection during
// a membership change — that an idempotent caller may retry, possibly
// after the overlay self-heals or the join handshake completes.
func IsTransient(err error) bool {
	return wire.IsErrnum(err, ErrnoTimedOut) || wire.IsErrnum(err, ErrnoHostUnreach) ||
		wire.IsErrnum(err, ErrnoStale)
}

// RPC sends a request and blocks until the matching response arrives or
// the broker's default deadline expires (no Handle RPC can hang
// indefinitely). On a failed response (nonzero errnum) the response is
// returned along with the decoded error. nodeid selects routing:
// wire.NodeidAny routes upstream to the first matching module;
// wire.NodeidUpstream skips the local rank; a concrete rank routes over
// the rank-addressed overlay.
func (h *Handle) RPC(topic string, nodeid uint32, body any) (*wire.Message, error) {
	return h.RPCWithOptions(context.Background(), topic, nodeid, body, RPCOptions{})
}

// RPCContext is RPC with cancellation.
func (h *Handle) RPCContext(ctx context.Context, topic string, nodeid uint32, body any) (*wire.Message, error) {
	return h.RPCWithOptions(ctx, topic, nodeid, body, RPCOptions{})
}

// RPCWithOptions is RPC with an explicit deadline/retry policy. Every
// attempt is a fresh request with a fresh match tag; a response to an
// abandoned attempt is dropped by the demultiplexer. Retries re-route
// from scratch, so an attempt that failed over a now-dead parent link is
// re-issued over the adoptive parent once re-parenting completes.
func (h *Handle) RPCWithOptions(ctx context.Context, topic string, nodeid uint32, body any, opts RPCOptions) (*wire.Message, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = h.b.cfg.RPCTimeout
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		resp, err := h.rpcOnce(ctx, topic, nodeid, body, timeout)
		if err == nil || attempt >= opts.Retries || !IsTransient(err) {
			return resp, err
		}
		d := backoff << uint(attempt)
		if d > maxRetryBackoff {
			d = maxRetryBackoff
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) // jitter to [d/2, d]
		t := h.Clock().NewTimer(d)
		select {
		case <-t.C():
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-h.closedCh:
			t.Stop()
			return nil, errShutdown
		}
	}
}

// rpcOnce performs a single request/response exchange with an optional
// deadline (timeout <= 0 disables it).
func (h *Handle) rpcOnce(ctx context.Context, topic string, nodeid uint32, body any, timeout time.Duration) (*wire.Message, error) {
	m, err := wire.NewRequest(topic, nodeid, body)
	if err != nil {
		return nil, err
	}
	tag := h.nextTag.Add(1)
	m.Seq = tag
	ch := make(chan *wire.Message, 1)

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errShutdown
	}
	h.pending[tag] = ch
	h.mu.Unlock()

	if !h.b.submit(inbound{msg: m, from: h.link}) {
		h.forget(tag)
		return nil, errShutdown
	}
	var timerC <-chan time.Time
	if timeout > 0 {
		t := h.Clock().NewTimer(timeout)
		defer t.Stop()
		timerC = t.C()
	}
	select {
	case resp := <-ch:
		if err := wire.ResponseError(resp); err != nil {
			return resp, err
		}
		return resp, nil
	case <-timerC:
		h.forget(tag)
		return nil, &wire.RPCError{Topic: topic, Errnum: ErrnoTimedOut,
			Msg: fmt.Sprintf("rpc deadline (%s) exceeded", timeout)}
	case <-ctx.Done():
		h.forget(tag)
		return nil, ctx.Err()
	case <-h.closedCh:
		return nil, errShutdown
	}
}

func (h *Handle) forget(tag uint64) {
	h.mu.Lock()
	delete(h.pending, tag)
	h.mu.Unlock()
}

// Send issues a fire-and-forget request (match tag 0): no response is
// expected or routed back.
func (h *Handle) Send(topic string, nodeid uint32, body any) error {
	m, err := wire.NewRequest(topic, nodeid, body)
	if err != nil {
		return err
	}
	m.Seq = 0
	if !h.b.submit(inbound{msg: m, from: h.link}) {
		return errShutdown
	}
	return nil
}

// Respond answers a request previously delivered to a module. For
// fire-and-forget requests it is a no-op.
func (h *Handle) Respond(req *wire.Message, body any) error {
	if req.Seq == 0 {
		return nil
	}
	resp, err := wire.NewResponse(req, body)
	if err != nil {
		return err
	}
	if !h.b.submit(inbound{msg: resp}) {
		return errShutdown
	}
	return nil
}

// RespondError answers a request with an error response.
func (h *Handle) RespondError(req *wire.Message, errnum int32, msg string) error {
	if req.Seq == 0 {
		return nil
	}
	if !h.b.submit(inbound{msg: wire.NewErrorResponse(req, errnum, msg)}) {
		return errShutdown
	}
	return nil
}

// ForwardUpstream re-forwards a request toward the root without matching
// the local module again, preserving its route stack so the eventual
// response returns directly to the original requester. Modules use this
// to pass requests they cannot satisfy to their upstream instance.
func (h *Handle) ForwardUpstream(req *wire.Message) error {
	req.Nodeid = wire.NodeidAny
	if !h.b.submit(inbound{msg: req, forceUp: true}) {
		return errShutdown
	}
	return nil
}

// PublishEvent publishes an event session-wide via the root sequencer
// and returns the assigned sequence number.
func (h *Handle) PublishEvent(topic string, body any) (uint64, error) {
	if body == nil {
		body = struct{}{}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("broker: publish %s: %w", topic, err)
	}
	var req any = pubBody{Topic: topic, Payload: raw}
	if h.b.binBodies.Load() {
		// Binary codec v3: skip the pub envelope's JSON re-marshal (which
		// would re-encode the already-marshaled event payload).
		w := wire.NewBinWriter(len(topic) + len(raw) + 8)
		w.String(topic)
		w.Bytes(raw)
		req = wire.RawBody(w.Finish())
	}
	resp, err := h.RPC(wire.TopicPub, wire.NodeidAny, req)
	if err != nil {
		return 0, err
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	if err := resp.UnpackJSON(&out); err != nil {
		return 0, err
	}
	return out.Seq, nil
}

// Subscription is a stream of events matching a topic prefix.
type Subscription struct {
	h      *Handle
	prefix string
	mb     *Mailbox[*wire.Message]
	once   sync.Once
}

// Chan returns the event channel. It closes when the subscription or the
// handle is closed.
func (s *Subscription) Chan() <-chan *wire.Message { return s.mb.Out() }

// Close cancels the subscription.
func (s *Subscription) Close() {
	s.once.Do(func() {
		h := s.h
		h.mu.Lock()
		subs := h.subs[:0]
		for _, x := range h.subs {
			if x != s {
				subs = append(subs, x)
			}
		}
		h.subs = subs
		prefixes := h.prefixes[:0]
		for _, x := range h.subs {
			prefixes = append(prefixes, x.prefix)
		}
		h.prefixes = prefixes
		h.mu.Unlock()
		s.mb.Close()
	})
}

// Subscribe registers interest in events whose topic matches prefix
// under the hierarchical namespace rules. Events published after
// Subscribe returns are guaranteed to be delivered in session order.
func (h *Handle) Subscribe(prefix string) (*Subscription, error) {
	s := &Subscription{h: h, prefix: prefix, mb: NewMailbox[*wire.Message]()}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		s.mb.Close()
		return nil, errShutdown
	}
	h.subs = append(h.subs, s)
	h.prefixes = append(h.prefixes, prefix)
	h.mu.Unlock()
	return s, nil
}

// Close detaches the handle from the broker, failing in-flight RPCs and
// closing subscription channels. Close is idempotent.
func (h *Handle) Close() {
	h.b.mu.Lock()
	delete(h.b.links, h.id)
	h.b.publishLinksLocked()
	h.b.mu.Unlock()
	h.shutdown()
}

// shutdown tears down handle state without touching the broker registry.
func (h *Handle) shutdown() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := append([]*Subscription(nil), h.subs...)
	h.mu.Unlock()
	close(h.closedCh)
	h.inbox.Close()
	for _, s := range subs {
		s.mb.Close()
	}
}
