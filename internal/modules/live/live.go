// Package live implements the liveness comms module of Table I: each
// tree node receives heartbeat-synchronized hello messages from its
// children, and after a configurable number of missed messages a
// liveness event is issued for the dead child.
//
// Every instance also folds live.down / live.up events into a local view
// of session health, so any rank can answer "which ranks are down?".
package live

import (
	"fmt"
	"sort"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// Config parameterizes the live module.
type Config struct {
	// MissLimit is how many consecutive heartbeat epochs a child may miss
	// before it is declared dead. 0 defaults to 3.
	MissLimit int
}

// helloBody is the heartbeat-synchronized child -> parent message.
type helloBody struct {
	Rank  int    `json:"rank"`
	Epoch uint64 `json:"epoch"`
}

// statusBody is the payload of live.down / live.up events.
type statusBody struct {
	Rank int `json:"rank"`
}

// Module is one live module instance.
type Module struct {
	cfg Config
	h   *broker.Handle

	mu        sync.Mutex
	epoch     uint64
	lastHello map[int]uint64 // child rank -> epoch of last hello
	deemed    map[int]bool   // child rank -> currently deemed down (local view)
	down      map[int]bool   // session-wide down set from events
	// left tracks gracefully departed ranks. A leave prunes the rank from
	// every map above — otherwise a parent would keep counting missed
	// hellos against a rank that is gone by design and report it dead
	// forever — and fences out stragglers (a late live.down or hello for
	// a departed rank is ignored).
	left map[int]bool
}

// New returns a live module instance.
func New(cfg Config) *Module {
	if cfg.MissLimit == 0 {
		cfg.MissLimit = 3
	}
	return &Module{
		cfg:       cfg,
		lastHello: map[int]uint64{},
		deemed:    map[int]bool{},
		down:      map[int]bool{},
		left:      map[int]bool{},
	}
}

// Factory loads live at every rank.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "live" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string {
	return []string{hb.EventTopic, "live.down", "live.up", wire.EventJoin, wire.EventLeave}
}

// Init implements broker.Module. Expected hello senders start as the
// rank's tree children; adopted children register dynamically when their
// first hello arrives after re-parenting.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	for _, c := range h.Broker().Tree().Children(h.Rank()) {
		m.lastHello[c] = 0
	}
	return nil
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	switch {
	case msg.Type == wire.Event && msg.Topic == hb.EventTopic:
		m.onHeartbeat(msg)
	case msg.Type == wire.Event && msg.Topic == "live.down":
		m.onStatus(msg, true)
	case msg.Type == wire.Event && msg.Topic == "live.up":
		m.onStatus(msg, false)
	case msg.Type == wire.Event && msg.Topic == wire.EventJoin:
		m.onMembership(msg, false)
	case msg.Type == wire.Event && msg.Topic == wire.EventLeave:
		m.onMembership(msg, true)
	case msg.Type == wire.Request && msg.Method() == "hello":
		m.onHello(msg)
	case msg.Type == wire.Request && msg.Method() == "query":
		m.onQuery(msg)
	case msg.Type == wire.Request:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("live: unknown method %q", msg.Method()))
	}
}

// onHeartbeat sends our own hello upstream and checks children for
// missed hellos.
func (m *Module) onHeartbeat(msg *wire.Message) {
	var body hb.Body
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	m.epoch = body.Epoch
	var died []int
	for child, last := range m.lastHello {
		missed := body.Epoch - last
		if last == 0 {
			// Never heard from this child; give it MissLimit epochs from
			// session start before declaring it dead.
			missed = body.Epoch
		}
		if int(missed) >= m.cfg.MissLimit && !m.deemed[child] {
			m.deemed[child] = true
			died = append(died, child)
		}
	}
	m.mu.Unlock()

	if m.h.Rank() != 0 {
		// Heartbeat-synchronized hello to our parent's live instance.
		m.h.Send("live.hello", wire.NodeidUpstream, helloBody{Rank: m.h.Rank(), Epoch: body.Epoch})
	}
	for _, r := range died {
		if _, err := m.h.PublishEvent("live.down", statusBody{Rank: r}); err != nil {
			// Un-flag the rank so the next heartbeat epoch re-detects it
			// and retries the announcement.
			m.h.Log(obs.LevelWarn, "live", "down event for rank %d failed: %v", r, err)
			m.mu.Lock()
			delete(m.deemed, r)
			m.mu.Unlock()
		}
	}
}

// onHello records a child's hello; a hello from a child previously
// deemed dead revives it.
func (m *Module) onHello(msg *wire.Message) {
	var body helloBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	if m.left[body.Rank] {
		m.mu.Unlock()
		return // straggler hello from a departed rank
	}
	m.lastHello[body.Rank] = body.Epoch
	wasDead := m.deemed[body.Rank]
	if wasDead {
		delete(m.deemed, body.Rank)
	}
	m.mu.Unlock()
	if wasDead {
		if _, err := m.h.PublishEvent("live.up", statusBody{Rank: body.Rank}); err != nil {
			m.h.Log(obs.LevelWarn, "live", "up event for rank %d failed: %v", body.Rank, err)
		}
	}
}

// onStatus folds a liveness event into the session-wide view.
func (m *Module) onStatus(msg *wire.Message, down bool) {
	var body statusBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	if down {
		if !m.left[body.Rank] {
			m.down[body.Rank] = true
		}
	} else {
		delete(m.down, body.Rank)
	}
	m.mu.Unlock()
}

// onMembership folds an epoch-tagged membership event. A leave prunes
// the departed rank from the hello ledger and both down views, so a rank
// that left gracefully is never (re)declared dead; a join just clears
// any tombstone bookkeeping (rank numbers are not reused). Joined
// children register in lastHello when their first hello arrives, like
// adopted children after re-parenting.
func (m *Module) onMembership(msg *wire.Message, leave bool) {
	var body broker.MembershipEvent
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	if leave {
		m.left[body.Rank] = true
		delete(m.lastHello, body.Rank)
		delete(m.deemed, body.Rank)
		delete(m.down, body.Rank)
	} else {
		delete(m.left, body.Rank)
	}
	m.mu.Unlock()
}

// onQuery answers with the session-wide down set.
func (m *Module) onQuery(msg *wire.Message) {
	m.mu.Lock()
	downs := make([]int, 0, len(m.down))
	for r := range m.down {
		downs = append(downs, r)
	}
	m.mu.Unlock()
	sort.Ints(downs)
	m.h.Respond(msg, map[string]any{"down": downs, "epoch": m.h.Epoch()})
}

// Down queries the local rank's view of dead ranks.
func Down(h *broker.Handle) ([]int, error) {
	resp, err := h.RPC("live.query", wire.NodeidAny, nil)
	if err != nil {
		return nil, err
	}
	var body struct {
		Down []int `json:"down"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return body.Down, nil
}
