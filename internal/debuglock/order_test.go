//go:build debuglock

package debuglock

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want it to contain %q", r, substr)
		}
	}()
	f()
}

// TestOrderCycle establishes ord.x -> ord.y on one path, then closes
// the cycle by acquiring them in the reverse order: the checker must
// panic at the second acquisition even though no deadlock actually
// occurs (both acquisitions happen on one goroutine).
func TestOrderCycle(t *testing.T) {
	var x, y Mutex
	x.SetClass("ord.x")
	y.SetClass("ord.y")

	x.Lock()
	y.Lock()
	y.Unlock()
	x.Unlock()

	y.Lock()
	defer y.Unlock()
	mustPanic(t, "lock-order cycle", func() { x.Lock() })
}

// TestTransitiveCycle checks that cycles through an intermediate class
// (a -> b -> c, then c -> a) are caught, not just direct inversions.
func TestTransitiveCycle(t *testing.T) {
	var a, b, c Mutex
	a.SetClass("tr.a")
	b.SetClass("tr.b")
	c.SetClass("tr.c")

	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	c.Lock()
	c.Unlock()
	b.Unlock()

	c.Lock()
	defer c.Unlock()
	mustPanic(t, "lock-order cycle", func() { a.Lock() })
}

// TestSelfDeadlock checks that re-acquiring the same instance on one
// goroutine panics instead of deadlocking.
func TestSelfDeadlock(t *testing.T) {
	var m Mutex
	m.SetClass("self.m")
	m.Lock()
	defer m.Unlock()
	mustPanic(t, "self-deadlock", func() { m.Lock() })
}

// TestSameClassInstances verifies that two instances of one class may
// nest without tripping the checker (sharded clients do this).
func TestSameClassInstances(t *testing.T) {
	var m1, m2 Mutex
	m1.SetClass("shard.mu")
	m2.SetClass("shard.mu")
	m1.Lock()
	m2.Lock()
	m2.Unlock()
	m1.Unlock()
}
