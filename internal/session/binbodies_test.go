package session

import "testing"

// TestBinaryBodiesJoinNegotiation: the cmb.join handshake decides
// whether a joining broker keeps its binary-body encoding. A parent that
// echoes the capability leaves it on; a parent that does not (an older
// or reconfigured session) downgrades the joiner to JSON.
func TestBinaryBodiesJoinNegotiation(t *testing.T) {
	s, err := New(Options{Size: 1, BinaryBodies: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if !s.Broker(0).BinaryBodies() {
		t.Fatal("root did not take Options.BinaryBodies")
	}

	// Parent advertises binary bodies: the grown rank keeps them.
	r1, err := s.Grow(1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Broker(r1).BinaryBodies() {
		t.Fatalf("rank %d downgraded despite binary-capable parent", r1)
	}

	// Parent stops advertising: the next joiner must fall back to JSON
	// even though its own config asked for binary.
	s.Broker(0).SetBinaryBodies(false)
	r2, err := s.Grow(1)
	if err != nil {
		t.Fatal(err)
	}
	parent := s.Tree().Parent(r2)
	if s.Broker(parent).BinaryBodies() {
		t.Skipf("rank %d joined under binary-capable parent %d; downgrade path not exercised", r2, parent)
	}
	if s.Broker(r2).BinaryBodies() {
		t.Fatalf("rank %d kept binary bodies under a JSON-only parent", r2)
	}
}
