package resrc

import (
	"fmt"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: time.Hour}),
			Factory(Config{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestEnumerationInKVS(t *testing.T) {
	const size = 7
	s := newSession(t, size)
	h := s.Handle(0)
	defer h.Close()
	if _, err := hb.Pulse(h); err != nil { // triggers enumeration fence
		t.Fatal(err)
	}
	kc := kvs.NewClient(h)
	deadline := time.After(10 * time.Second)
	for {
		names, err := kc.GetDir("resource.rank")
		if err == nil && len(names) == size {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("enumeration incomplete: %v %v", names, err)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	var info NodeInfo
	if err := kc.Get("resource.rank.3", &info); err != nil {
		t.Fatal(err)
	}
	if info.Rank != 3 || info.Cores != 16 || info.Sockets != 2 {
		t.Fatalf("node info %+v", info)
	}
}

func TestEnumerationIdempotentAcrossHeartbeats(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(0)
	defer h.Close()
	hb.Pulse(h)
	hb.Pulse(h) // second heartbeat must not re-fence (would hang forever)
	kc := kvs.NewClient(h)
	deadline := time.After(10 * time.Second)
	for {
		names, err := kc.GetDir("resource.rank")
		if err == nil && len(names) == 3 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("enumeration never completed")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestAllocFreeCycle(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(5) // requests forward upstream to the root instance
	defer h.Close()

	ranks, err := Alloc(h, "jobA", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 {
		t.Fatalf("granted %v", ranks)
	}
	// Allocation is recorded in the KVS.
	kc := kvs.NewClient(h)
	var recorded []int
	if err := kc.Get("resource.alloc.jobA", &recorded); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 3 {
		t.Fatalf("kvs record %v", recorded)
	}
	avail, err := Avail(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(avail) != 4 {
		t.Fatalf("avail = %v", avail)
	}
	// Double-allocating a taken rank fails.
	if _, err := AllocRanks(h, "jobB", []int{ranks[0]}); err == nil {
		t.Fatal("double allocation accepted")
	}
	if err := Free(h, "jobA"); err != nil {
		t.Fatal(err)
	}
	avail, _ = Avail(h)
	if len(avail) != 7 {
		t.Fatalf("after free, avail = %v", avail)
	}
	if err := kc.Get("resource.alloc.jobA", nil); !kvs.ErrNotFound(err) {
		t.Fatalf("allocation record not removed: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(0)
	defer h.Close()
	if _, err := Alloc(h, "big", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Alloc(h, "more", 1); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := Free(h, "nosuch"); err == nil {
		t.Fatal("freeing unknown id accepted")
	}
}

func TestCustomDescribe(t *testing.T) {
	s, err := session.New(session.Options{
		Size: 2,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: time.Hour}),
			Factory(Config{Describe: func(rank int) NodeInfo {
				return NodeInfo{Name: fmt.Sprintf("gpu%d", rank), Cores: 64, MemMB: 1 << 20, Sockets: 4}
			}}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handle(0)
	defer h.Close()
	hb.Pulse(h)
	kc := kvs.NewClient(h)
	deadline := time.After(10 * time.Second)
	for {
		var info NodeInfo
		if err := kc.Get("resource.rank.1", &info); err == nil {
			if info.Name != "gpu1" || info.Cores != 64 {
				t.Fatalf("info %+v", info)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("custom enumeration never appeared")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}
