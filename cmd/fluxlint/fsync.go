package main

// fsync-discipline: on a write path, a discarded Sync or Close error is
// a silent durability lie. Sync is the only point where the kernel
// reports that earlier buffered writes failed to reach stable storage;
// ignoring its error means acknowledging a commit the disk never took.
// Close is the last chance to observe a delayed write-back error, so on
// a handle the function also wrote through, its error matters too.
//
// The rule applies to file-like values — anything whose method set has
// Write (or Append) plus Sync plus Close, which covers *os.File, the
// cas.File abstraction, and its fault-injecting wrappers, while
// excluding net.Conn (no Sync) and bytes.Buffer (no Close):
//
//   - a Sync() whose result is discarded (expression statement, defer,
//     or go) is always flagged: nobody syncs a file they did not write;
//   - a Close() whose result is discarded is flagged only when the same
//     function writes through the same variable — read-only opens keep
//     the idiomatic `defer f.Close()`.
//
// "Writes through" is interprocedural within the package (summary.go):
// a handle returned by a same-package helper that wrote it, or passed
// to a same-package helper that writes its parameter, is a written
// handle here too — `defer f.Close()` after `f, _ := createLog(...)`
// does not escape the rule just because the Write lives in the helper.
//
// `_ = f.Close()` is an explicit, visible discard (the error is already
// being superseded, e.g. on an error path) and is not flagged.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const fsyncDisciplineName = "fsync-discipline"

var fsyncDisciplinePass = Pass{
	Name: fsyncDisciplineName,
	Doc:  "flag discarded Sync/Close errors on write paths",
	Run:  runFsyncDiscipline,
}

// fileWriteMethods are the calls that mark a handle as written within a
// function. Sync is included: syncing implies a write path even when
// the writes happened elsewhere (e.g. a helper took the handle).
var fileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Append":      true,
	"Sync":        true,
}

func runFsyncDiscipline(l *Loader, p *Package) []Finding {
	c := &fsyncChecker{l: l, p: p, ix: indexOf(p)}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			c.checkFunc(fd.Body)
			return false // checkFunc already covered nested closures
		})
	}
	return c.findings
}

type fsyncChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	findings []Finding
}

func (c *fsyncChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: fsyncDisciplineName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// checkFunc analyzes one function body (closures included — a write in
// the function with a deferred close in a closure, or vice versa, is
// still the same handle's lifecycle).
func (c *fsyncChecker) checkFunc(body *ast.BlockStmt) {
	// Which file-like variables does this function write through,
	// directly or via same-package helpers (summary layer)?
	written := c.ix.writtenHandles(body)

	// Discarded Sync/Close on those handles.
	ast.Inspect(body, func(n ast.Node) bool {
		var ce *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			ce, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			ce = n.Call
		case *ast.GoStmt:
			ce = n.Call
		}
		if ce == nil {
			return true
		}
		se, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok || !fileLike(c.p, se) {
			return true
		}
		switch se.Sel.Name {
		case "Sync":
			c.report(ce.Pos(), "Sync error discarded: a failed fsync means the data is not durable")
		case "Close":
			if obj := recvObj(c.p, se.X); obj != nil && written[obj] {
				c.report(ce.Pos(), "Close error discarded on a written file: the last write-back error is lost")
			}
		}
		return true
	})
}

// fileLike reports whether se is a method call on a value whose method
// set includes Write-or-Append, Sync, and Close.
func fileLike(p *Package, se *ast.SelectorExpr) bool {
	sel := p.Info.Selections[se]
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	recv := sel.Recv()
	ms := types.NewMethodSet(recv)
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		if _, isIface := recv.Underlying().(*types.Interface); !isIface {
			ms = types.NewMethodSet(types.NewPointer(recv))
		}
	}
	has := func(name string) bool { return ms.Lookup(nil, name) != nil }
	return (has("Write") || has("Append")) && has("Sync") && has("Close")
}

// recvObj resolves the receiver expression to a stable types.Object so
// writes and closes through the same variable (or same struct field)
// correlate. Unresolvable receivers (e.g. a call result) return nil.
func recvObj(p *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return p.Info.ObjectOf(e.Sel)
	case *ast.ParenExpr:
		return recvObj(p, e.X)
	}
	return nil
}
