// Package hb implements the heartbeat comms module of Table I: a
// periodic heartbeat event multicast across the comms session that
// synchronizes background activity to reduce scheduling jitter.
//
// The instance at rank 0 publishes an "hb" event with a monotonically
// increasing epoch at a configurable interval; instances at other ranks
// are passive and merely answer epoch queries. Other modules (live, mon,
// kvs cache expiry) key their background work off these events.
package hb

import (
	"fmt"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/wire"
)

// EventTopic is the heartbeat event topic. It aliases the wire-level
// constant because the broker itself keys work off heartbeats (the log
// plane flushes warn+ batches upstream on each pulse) and must agree on
// the topic without importing this package.
const EventTopic = wire.EventHeartbeat

// Body is the heartbeat event payload.
type Body struct {
	Epoch uint64 `json:"epoch"`
}

// Config parameterizes the heartbeat module.
type Config struct {
	// Interval between heartbeats; 0 defaults to 2s (the generator uses
	// the broker's clock, so manual clocks drive it deterministically).
	Interval time.Duration
}

// Module is one hb module instance.
type Module struct {
	cfg Config
	h   *broker.Handle

	mu    sync.Mutex
	epoch uint64

	ticker *clock.Ticker
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New returns an hb module instance.
func New(cfg Config) *Module {
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Second
	}
	return &Module{cfg: cfg, stop: make(chan struct{})}
}

// Factory loads hb at every rank; only rank 0 generates events.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "hb" }

// Subscriptions implements broker.Module: every instance tracks the
// current epoch from the event stream.
func (m *Module) Subscriptions() []string { return []string{EventTopic} }

// Init implements broker.Module: the root instance starts the generator.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	if h.Rank() == 0 {
		m.ticker = clock.NewTicker(h.Clock(), m.cfg.Interval)
		m.wg.Add(1)
		go m.generate()
	}
	return nil
}

// generate publishes one heartbeat per tick until shutdown.
func (m *Module) generate() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ticker.C:
			m.mu.Lock()
			m.epoch++
			next := m.epoch
			m.mu.Unlock()
			if _, err := m.h.PublishEvent(EventTopic, Body{Epoch: next}); err != nil {
				if broker.ErrShutdown(err) {
					return
				}
			}
		case <-m.stop:
			return
		}
	}
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {
	close(m.stop)
	if m.ticker != nil {
		m.ticker.Stop()
	}
	m.wg.Wait()
}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event && msg.Topic == EventTopic {
		var body Body
		if err := msg.UnpackJSON(&body); err == nil {
			m.mu.Lock()
			if body.Epoch > m.epoch {
				m.epoch = body.Epoch
			}
			m.mu.Unlock()
		}
		return
	}
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "get":
		m.mu.Lock()
		epoch := m.epoch
		m.mu.Unlock()
		m.h.Respond(msg, Body{Epoch: epoch})
	case "pulse":
		// Manual heartbeat trigger, root only; useful for tests/tools.
		if m.h.Rank() != 0 {
			m.h.RespondError(msg, broker.ErrnoInval, "hb: pulse is served by rank 0")
			return
		}
		m.mu.Lock()
		m.epoch++
		next := m.epoch
		m.mu.Unlock()
		if _, err := m.h.PublishEvent(EventTopic, Body{Epoch: next}); err != nil {
			m.h.RespondError(msg, broker.ErrnoProto, err.Error())
			return
		}
		m.h.Respond(msg, Body{Epoch: next})
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("hb: unknown method %q", msg.Method()))
	}
}

// Epoch queries the current heartbeat epoch seen at the local rank.
func Epoch(h *broker.Handle) (uint64, error) {
	resp, err := h.RPC("hb.get", wire.NodeidAny, nil)
	if err != nil {
		return 0, err
	}
	var body Body
	if err := resp.UnpackJSON(&body); err != nil {
		return 0, err
	}
	return body.Epoch, nil
}

// Pulse triggers one immediate heartbeat at the session root.
func Pulse(h *broker.Handle) (uint64, error) {
	resp, err := h.RPC("hb.pulse", 0, nil)
	if err != nil {
		return 0, err
	}
	var body Body
	if err := resp.UnpackJSON(&body); err != nil {
		return 0, err
	}
	return body.Epoch, nil
}
