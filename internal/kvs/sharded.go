package kvs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"fluxgo/internal/broker"
)

// Sharded KVS: the paper's future-work direction of "distributing the
// KVS master itself", realized as namespace sharding. N independent kvs
// module instances ("kvs0".."kvsN-1") run side by side, each with its
// own master placed at a different rank, so commit application — the
// master's CPU and memory load — spreads across the session. Keys are
// partitioned by the hash of their first path component, keeping each
// directory subtree wholly within one shard; consistency guarantees are
// per shard.

// ShardService names shard i's comms-module service.
func ShardService(i int) string { return fmt.Sprintf("kvs%d", i) }

// ShardMasterRank spreads shard masters evenly over the session.
func ShardMasterRank(shard, nshards, size int) int {
	return (shard * size) / nshards
}

// ShardedFactories returns the module factories for an n-shard KVS,
// suitable for session.Options.Modules.
func ShardedFactories(nshards int, cfg ModuleConfig) []func(rank, size int) broker.Module {
	out := make([]func(rank, size int) broker.Module, nshards)
	for i := 0; i < nshards; i++ {
		i := i
		out[i] = func(rank, size int) broker.Module {
			c := cfg
			c.Service = ShardService(i)
			c.MasterRank = ShardMasterRank(i, nshards, size)
			return NewModule(c)
		}
	}
	return out
}

// ShardOf maps a key to its shard by the FNV-1a hash of the first path
// component.
func ShardOf(key string, nshards int) int {
	first := key
	if i := strings.IndexByte(key, '.'); i >= 0 {
		first = key[:i]
	}
	h := fnv.New32a()
	h.Write([]byte(first))
	return int(h.Sum32() % uint32(nshards))
}

// ShardedClient routes KVS operations across the shard set.
type ShardedClient struct {
	clients []*Client
}

// NewShardedClient builds a client over an n-shard KVS deployment.
func NewShardedClient(h *broker.Handle, nshards int) (*ShardedClient, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("kvs: %d shards", nshards)
	}
	s := &ShardedClient{clients: make([]*Client, nshards)}
	for i := range s.clients {
		s.clients[i] = NewClientFor(h, ShardService(i))
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedClient) Shards() int { return len(s.clients) }

// shard returns the client owning key.
func (s *ShardedClient) shard(key string) *Client {
	return s.clients[ShardOf(key, len(s.clients))]
}

// Put records key = v in the owning shard.
func (s *ShardedClient) Put(key string, v any) error {
	return s.shard(key).Put(key, v)
}

// PutRaw is Put with pre-marshaled JSON.
func (s *ShardedClient) PutRaw(key string, raw json.RawMessage) error {
	return s.shard(key).PutRaw(key, raw)
}

// Delete records an unlink in the owning shard.
func (s *ShardedClient) Delete(key string) error {
	return s.shard(key).Delete(key)
}

// Get reads key from its owning shard.
func (s *ShardedClient) Get(key string, out any) error {
	return s.shard(key).Get(key, out)
}

// GetDir lists the directory at key from its owning shard.
func (s *ShardedClient) GetDir(key string) ([]string, error) {
	return s.shard(key).GetDir(key)
}

// Commit flushes every shard with pending ops; per-shard masters apply
// concurrently. It returns the per-shard versions reached (0 for shards
// left untouched by this client).
func (s *ShardedClient) Commit() ([]uint64, error) {
	versions := make([]uint64, len(s.clients))
	errs := make(chan error, len(s.clients))
	for i, c := range s.clients {
		go func(i int, c *Client) {
			c.mu.Lock()
			dirty := len(c.pending) > 0
			c.mu.Unlock()
			if !dirty {
				errs <- nil
				return
			}
			v, err := c.Commit()
			versions[i] = v
			errs <- err
		}(i, c)
	}
	var first error
	for range s.clients {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return versions, first
}

// Fence commits collectively across every shard: all nprocs participants
// must call Fence with the same name; each shard completes independently
// under its own master. Returns per-shard versions.
func (s *ShardedClient) Fence(name string, nprocs int) ([]uint64, error) {
	versions := make([]uint64, len(s.clients))
	errs := make(chan error, len(s.clients))
	for i, c := range s.clients {
		go func(i int, c *Client) {
			v, err := c.Fence(fmt.Sprintf("%s.s%d", name, i), nprocs)
			versions[i] = v
			errs <- err
		}(i, c)
	}
	var first error
	for range s.clients {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return versions, first
}
