package broker

import (
	"context"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// swallowParent attaches a parent tree link whose far end never answers,
// so upstream RPCs hang until a deadline or link failure intervenes. It
// returns the far end of the pipe.
func swallowParent(t *testing.T, b *Broker) transport.Conn {
	t.Helper()
	near, far := transport.Pipe("rank:0", "rank:1")
	b.AttachConn(LinkParentTree, near)
	return far
}

func TestRPCDeadlineExpires(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	swallowParent(t, b)
	h := b.NewHandle()
	defer h.Close()

	start := time.Now()
	resp, err := h.RPCWithOptions(context.Background(), "slow.op", wire.NodeidAny, nil,
		RPCOptions{Timeout: 30 * time.Millisecond})
	if err == nil {
		t.Fatalf("RPC into a silent parent succeeded: %v", resp)
	}
	if !wire.IsErrnum(err, ErrnoTimedOut) {
		t.Fatalf("err = %v, want ETIMEDOUT", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not bound the RPC")
	}
}

func TestRPCDefaultDeadlineFromConfig(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3, RPCTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	swallowParent(t, b)
	h := b.NewHandle()
	defer h.Close()

	// Plain RPC with no per-call options picks up the broker default.
	_, err = h.RPC("slow.op", wire.NodeidAny, nil)
	if !wire.IsErrnum(err, ErrnoTimedOut) {
		t.Fatalf("err = %v, want ETIMEDOUT", err)
	}
	if !IsTransient(err) {
		t.Fatal("deadline expiry not classified transient")
	}
}

// flakyModule fails the first failures requests with errnum, then echoes.
type flakyModule struct {
	h        *Handle
	mu       sync.Mutex
	failures int
	errnum   int32
	calls    int
}

func (m *flakyModule) Name() string            { return "flaky" }
func (m *flakyModule) Subscriptions() []string { return nil }
func (m *flakyModule) Init(h *Handle) error    { m.h = h; return nil }
func (m *flakyModule) Shutdown()               {}

func (m *flakyModule) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

func (m *flakyModule) Recv(msg *wire.Message) {
	m.mu.Lock()
	m.calls++
	fail := m.calls <= m.failures
	m.mu.Unlock()
	if fail {
		m.h.RespondError(msg, m.errnum, "injected failure")
		return
	}
	m.h.Respond(msg, map[string]bool{"ok": true})
}

func TestRPCRetriesTransientFailure(t *testing.T) {
	b := newBroker(t)
	mod := &flakyModule{failures: 2, errnum: ErrnoHostUnreach}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	defer h.Close()

	resp, err := h.RPCWithOptions(context.Background(), "flaky.op", wire.NodeidAny, nil,
		RPCOptions{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("retried RPC failed: %v", err)
	}
	var body struct {
		OK bool `json:"ok"`
	}
	if err := resp.UnpackJSON(&body); err != nil || !body.OK {
		t.Fatalf("response %v err %v", body, err)
	}
	if got := mod.callCount(); got != 3 {
		t.Fatalf("module saw %d calls, want 3 (2 failures + success)", got)
	}
}

func TestRPCRetriesExhausted(t *testing.T) {
	b := newBroker(t)
	mod := &flakyModule{failures: 100, errnum: ErrnoHostUnreach}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	defer h.Close()

	_, err := h.RPCWithOptions(context.Background(), "flaky.op", wire.NodeidAny, nil,
		RPCOptions{Retries: 2, Backoff: time.Millisecond})
	if !wire.IsErrnum(err, ErrnoHostUnreach) {
		t.Fatalf("err = %v, want EHOSTUNREACH", err)
	}
	if got := mod.callCount(); got != 3 {
		t.Fatalf("module saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

func TestRPCDoesNotRetryPermanentFailure(t *testing.T) {
	b := newBroker(t)
	mod := &flakyModule{failures: 100, errnum: ErrnoInval}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	defer h.Close()

	_, err := h.RPCWithOptions(context.Background(), "flaky.op", wire.NodeidAny, nil,
		RPCOptions{Retries: 5, Backoff: time.Millisecond})
	if !wire.IsErrnum(err, ErrnoInval) {
		t.Fatalf("err = %v, want EINVAL", err)
	}
	if got := mod.callCount(); got != 1 {
		t.Fatalf("permanent failure retried: %d calls", got)
	}
}

// TestLinkDownFailsInflight: a request forwarded upstream whose parent
// link dies before the response returns must fail fast with EHOSTUNREACH
// — the no-hang fast path — rather than waiting out a deadline.
func TestLinkDownFailsInflight(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	far := swallowParent(t, b)
	h := b.NewHandle()
	defer h.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := h.RPCWithOptions(context.Background(), "slow.op", wire.NodeidAny, nil,
			RPCOptions{Timeout: -1}) // no deadline: only link failure can end this
		errc <- err
	}()

	// Wait until the request has actually been forwarded upstream...
	if _, err := far.Recv(); err != nil {
		t.Fatal(err)
	}
	// ...then kill the parent link.
	far.Close()

	select {
	case err := <-errc:
		if !wire.IsErrnum(err, ErrnoHostUnreach) {
			t.Fatalf("err = %v, want EHOSTUNREACH", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight RPC not failed by parent link death")
	}
	if st := b.Stats(); st.InflightFailed != 1 {
		t.Fatalf("InflightFailed = %d, want 1", st.InflightFailed)
	}
}

// TestNoParentFailsFast: with the parent link already gone (re-parenting
// in flight), upstream requests fail immediately with EHOSTUNREACH.
func TestNoParentFailsFast(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	h := b.NewHandle()
	defer h.Close()

	_, err = h.RPC("any.op", wire.NodeidAny, nil)
	if !wire.IsErrnum(err, ErrnoHostUnreach) {
		t.Fatalf("err = %v, want EHOSTUNREACH", err)
	}
}

func TestResponseSettlesInflight(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	far := swallowParent(t, b)
	h := b.NewHandle()
	defer h.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := h.RPC("up.op", wire.NodeidAny, nil)
		errc <- err
	}()
	req, err := far.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.NewResponse(req, map[string]bool{"ok": true})
	if err != nil {
		t.Fatal(err)
	}
	if err := far.Send(resp); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The response retraced the link, so the in-flight entry is settled:
	// a later link death must not synthesize a stale failure.
	if n := b.inflightCount(); n != 0 {
		t.Fatalf("%d in-flight entries after response settled", n)
	}
	if st := b.Stats(); st.InflightFailed != 0 {
		t.Fatalf("InflightFailed = %d, want 0", st.InflightFailed)
	}
}

func TestSendErrorsCounted(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	// Tear down the handle's inbox without deregistering the link, the
	// window a real teardown also passes through.
	h.shutdown()
	b.send(h.link, &wire.Message{Type: wire.Event, Topic: "x"})
	if st := b.Stats(); st.SendErrors != 1 {
		t.Fatalf("SendErrors = %d, want 1", st.SendErrors)
	}
	h.Close()
}
