package sched

// Elastic simulation: the discrete-event scheduler core, generalized
// over a membership timeline. An elastic session grows and shrinks while
// jobs run (Session.Grow / Session.Shrink); the simulator mirrors that
// by adopting and evicting pool nodes at virtual times, so policies can
// be evaluated under churn. A leave uses drain semantics, exactly like
// the live protocol: nodes still allocated at the leave time are evicted
// as soon as their job retires, never preempted.

import (
	"fmt"
	"sort"
	"time"

	"fluxgo/internal/resource"
)

// MembershipChange alters the simulated pool at virtual time At: Join
// nodes are adopted into the pool, Leave names nodes to evict. Busy
// leave targets are drained — evicted when their allocation releases.
type MembershipChange struct {
	At    time.Duration
	Join  []*resource.Resource
	Leave []string
}

// SimulateElastic runs jobs through pool under policy in virtual time
// while applying the membership timeline, and returns schedule metrics.
// Jobs are mutated in place (Start/End/State). Utilization is measured
// against the time-integral of pool capacity, so it stays comparable
// across pool sizes.
func SimulateElastic(pool *resource.Pool, policy Policy, jobs []*Job, changes []MembershipChange) (Metrics, error) {
	timeline := append([]MembershipChange(nil), changes...)
	sort.SliceStable(timeline, func(a, b int) bool { return timeline[a].At < timeline[b].At })

	// Peak capacity over the timeline bounds what any job may ask for.
	peak, size := pool.TotalNodes(), pool.TotalNodes()
	for _, c := range timeline {
		size += len(c.Join) - len(c.Leave)
		if size > peak {
			peak = size
		}
	}

	byID := map[string]*Job{}
	for _, j := range jobs {
		if j.Req.Nodes < 1 {
			return Metrics{}, fmt.Errorf("sched: job %s requests %d nodes", j.ID, j.Req.Nodes)
		}
		if j.Req.Nodes > peak {
			return Metrics{}, fmt.Errorf("sched: job %s needs %d nodes, pool has %d",
				j.ID, j.Req.Nodes, peak)
		}
		if _, dup := byID[j.ID]; dup {
			return Metrics{}, fmt.Errorf("sched: duplicate job id %s", j.ID)
		}
		byID[j.ID] = j
		j.State = StatePending
	}

	pending := append([]*Job(nil), jobs...)
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].Submit < pending[b].Submit })
	var running []*Job
	var draining []string // leave targets waiting for their job to retire
	var now time.Duration
	m := Metrics{Policy: policy.Name()}
	var nodeSeconds, capacitySeconds float64

	for len(pending) > 0 || len(running) > 0 {
		// Fold due membership changes into the pool, then retry drains:
		// a node named by an earlier leave evicts once it is free.
		for len(timeline) > 0 && timeline[0].At <= now {
			c := timeline[0]
			timeline = timeline[1:]
			pool.Adopt(c.Join)
			draining = append(draining, c.Leave...)
		}
		draining = evictFree(pool, draining)

		// Queue: pending jobs that have arrived.
		var queue []*Job
		for _, j := range pending {
			if j.Submit <= now {
				queue = append(queue, j)
			}
		}
		if len(queue) > 0 {
			m.Decisions++
			for _, j := range policy.Pick(queue, running, pool, now) {
				if _, err := pool.Allocate(j.ID, j.Req); err != nil {
					return m, fmt.Errorf("sched: policy %s picked infeasible job %s: %v",
						policy.Name(), j.ID, err)
				}
				j.State = StateRunning
				j.Start = now
				j.End = now + j.Duration
				running = append(running, j)
				nodeSeconds += float64(j.Req.Nodes) * j.Duration.Seconds()
				for i, p := range pending {
					if p == j {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}
		}

		// Advance virtual time to the next event: earliest job end, next
		// submit, or next membership change.
		next := time.Duration(-1)
		for _, r := range running {
			if next < 0 || r.End < next {
				next = r.End
			}
		}
		for _, p := range pending {
			if p.Submit > now && (next < 0 || p.Submit < next) {
				next = p.Submit
			}
		}
		if len(timeline) > 0 && timeline[0].At > now && (next < 0 || timeline[0].At < next) {
			next = timeline[0].At
		}
		if next < 0 {
			if len(pending) > 0 {
				return m, fmt.Errorf("sched: %d jobs starved (first: %s)", len(pending), pending[0].ID)
			}
			break
		}
		capacitySeconds += float64(pool.TotalNodes()) * (next - now).Seconds()
		now = next

		// Retire finished jobs.
		keep := running[:0]
		for _, r := range running {
			if r.End <= now {
				r.State = StateComplete
				pool.Release(r.ID)
				m.Completed++
				m.AvgWait += r.Wait()
				if r.Wait() > m.MaxWait {
					m.MaxWait = r.Wait()
				}
				if r.End > m.Makespan {
					m.Makespan = r.End
				}
			} else {
				keep = append(keep, r)
			}
		}
		running = keep
	}
	if m.Completed > 0 {
		m.AvgWait /= time.Duration(m.Completed)
	}
	if capacitySeconds > 0 {
		m.Utilization = nodeSeconds / capacitySeconds
	}
	return m, nil
}

// evictFree evicts every named node that is currently free and returns
// the names still draining (allocated, or not present in the pool yet).
func evictFree(pool *resource.Pool, names []string) []string {
	if len(names) == 0 {
		return names
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var free []*resource.Resource
	for _, n := range pool.Root().FindAll(resource.TypeNode) {
		if want[n.Name] && n.Owner() == "" {
			free = append(free, n)
			delete(want, n.Name)
		}
	}
	if len(free) > 0 {
		if err := pool.Evict(free); err == nil {
			names = names[:0]
			for n := range want {
				names = append(names, n)
			}
			sort.Strings(names)
		}
	}
	return names
}
