package main

// errno-discipline: two related hygiene rules around the wire errno
// protocol.
//
// Rule 1 — no raw errno integers. Error responses must be built from
// the named constants of the wire package (or local aliases following
// the Errno*/errFoo naming convention), never from bare integer
// literals: `RespondError(msg, 22, ...)` silently diverges from the
// protocol table when the table changes. Checked call shapes:
// NewErrorResponse / RespondError / respondErr (errnum is argument 1)
// and composite literals of wire.RPCError (the Errnum field).
//
// Rule 2 — no ignored RPC-family or connection errors. A discarded
// error from RPC/RPCContext/RPCWithOptions/PublishEvent, or from
// Send/Recv on a connection-shaped receiver, hides routing failures the
// no-hang design depends on surfacing. Flagged shapes: the call as a
// bare statement, `go`/`defer` of the call, and `_` in the error
// position of an assignment. Rule 2 runs over the reachable ops of
// each function's CFG (closures included), so a discard in code cut
// off by return/panic is not reported; rule 1 is a naming-hygiene rule
// and still covers every literal in the file.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

const errnoDisciplineName = "errno-discipline"

var errnoDisciplinePass = Pass{
	Name: errnoDisciplineName,
	Doc:  "flag raw errno literals and ignored RPC/connection errors",
	Run:  runErrnoDiscipline,
}

// errnoBuilders maps callee base name to the index of its errnum
// argument.
var errnoBuilders = map[string]int{
	"NewErrorResponse": 1,
	"RespondError":     1,
	"respondErr":       1,
}

// errnoConstName matches local errno constant conventions.
var errnoConstName = regexp.MustCompile(`^(Errno|errno[A-Z]|err[A-Z])`)

func runErrnoDiscipline(l *Loader, p *Package) []Finding {
	c := &errnoChecker{l: l, p: p, ix: indexOf(p)}
	for _, f := range p.Files {
		// Rule 1: every literal in the file, reachable or not.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c.checkBuilder(n)
			case *ast.CompositeLit:
				c.checkRPCErrorLit(n)
			}
			return true
		})
		// Rule 2: reachable ops only (closures included via recursion).
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					reachableOps(c.ix, d.Body, c.checkOp)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							for _, fl := range funcLitsIn(v) {
								reachableOps(c.ix, fl.Body, c.checkOp)
							}
						}
					}
				}
			}
		}
	}
	return c.findings
}

// checkOp applies rule 2 to one reachable CFG op.
func (c *errnoChecker) checkOp(o op) {
	switch n := o.node.(type) {
	case *ast.ExprStmt:
		c.checkDiscarded(n.X, "result ignored")
	case *ast.GoStmt:
		c.checkDiscarded(n.Call, "error discarded by go statement")
	case *ast.DeferStmt:
		c.checkDiscarded(n.Call, "error discarded by defer")
	case *ast.AssignStmt:
		c.checkBlankError(n)
	}
}

type errnoChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	findings []Finding
}

func (c *errnoChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: errnoDisciplineName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// calleeName returns the base name of the called function or method.
func calleeName(e ast.Expr) string {
	switch fun := e.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkBuilder enforces rule 1 on error-response constructor calls.
func (c *errnoChecker) checkBuilder(ce *ast.CallExpr) {
	idx, ok := errnoBuilders[calleeName(ce.Fun)]
	if !ok || len(ce.Args) <= idx {
		return
	}
	if bad, what := c.rawErrno(ce.Args[idx]); bad {
		c.report(ce.Args[idx].Pos(),
			"%s as errnum; use a wire.Errno* constant (or a named alias)", what)
	}
}

// checkRPCErrorLit enforces rule 1 on wire.RPCError composite literals.
func (c *errnoChecker) checkRPCErrorLit(cl *ast.CompositeLit) {
	t := c.p.Info.TypeOf(cl)
	if t == nil {
		return
	}
	named, ok := derefNamed(t)
	if !ok || named.Obj().Name() != "RPCError" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Name() != "wire" {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Errnum" {
			if bad, what := c.rawErrno(kv.Value); bad {
				c.report(kv.Value.Pos(),
					"%s as Errnum; use a wire.Errno* constant (or a named alias)", what)
			}
		}
	}
}

// rawErrno reports whether e is a bare (possibly converted) integer
// literal rather than a named errno constant. Named constants pass if
// they are declared in a package named wire or follow the Errno*/errX
// naming convention; anything else named is given the benefit of the
// doubt (it is at least traceable).
func (c *errnoChecker) rawErrno(e ast.Expr) (bad bool, what string) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			return true, "integer literal " + e.Value
		}
	case *ast.CallExpr:
		// int32(22)-style conversion of a literal.
		if len(e.Args) == 1 {
			if tv, ok := c.p.Info.Types[e.Fun]; ok && tv.IsType() {
				return c.rawErrno(e.Args[0])
			}
		}
	case *ast.Ident:
		return c.checkConstObj(c.p.Info.Uses[e])
	case *ast.SelectorExpr:
		return c.checkConstObj(c.p.Info.Uses[e.Sel])
	}
	return false, ""
}

func (c *errnoChecker) checkConstObj(obj types.Object) (bad bool, what string) {
	cst, ok := obj.(*types.Const)
	if !ok {
		return false, ""
	}
	if cst.Pkg() != nil && cst.Pkg().Name() == "wire" {
		return false, ""
	}
	if errnoConstName.MatchString(cst.Name()) {
		return false, ""
	}
	return true, fmt.Sprintf("constant %s (not wire-derived or Errno*-named)", cst.Name())
}

// errorProne reports whether ce is a call whose error result must not
// be discarded, with a short description for the message.
func (c *errnoChecker) errorProne(ce *ast.CallExpr) (string, bool) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := se.Sel.Name
	if rpcFamily[name] && c.p.Info.Selections[se] != nil {
		return name, true
	}
	if connLike(c.p.Info, se) {
		return "connection " + name, true
	}
	return "", false
}

// checkDiscarded enforces rule 2 on statements that drop every result.
func (c *errnoChecker) checkDiscarded(e ast.Expr, how string) {
	ce, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if name, prone := c.errorProne(ce); prone {
		c.report(ce.Pos(), "%s: %s", name, how)
	}
}

// checkBlankError flags `_` in the error result position of an
// error-prone call.
func (c *errnoChecker) checkBlankError(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	ce, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, prone := c.errorProne(ce)
	if !prone {
		return
	}
	sig, ok := c.p.Info.TypeOf(ce.Fun).(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(as.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			c.report(id.Pos(), "%s: error assigned to _", name)
		}
	}
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// derefNamed unwraps pointers down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt, true
		default:
			return nil, false
		}
	}
}
