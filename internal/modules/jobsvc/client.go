package jobsvc

import (
	"context"
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/wire"
)

// Submit enqueues a job and returns its id.
func Submit(h *broker.Handle, spec Spec) (string, error) {
	resp, err := h.RPC("job.submit", wire.NodeidAny, spec)
	if err != nil {
		return "", err
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return "", err
	}
	return body.ID, nil
}

// List returns active (queued + running) jobs, ordered by id.
func List(h *broker.Handle) ([]*Info, error) {
	resp, err := h.RPC("job.list", wire.NodeidAny, nil)
	if err != nil {
		return nil, err
	}
	var body struct {
		Jobs []*Info `json:"jobs"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// Cancel removes a queued job or signals a running one.
func Cancel(h *broker.Handle, id string) error {
	_, err := h.RPC("job.cancel", wire.NodeidAny, map[string]string{"id": id})
	return err
}

// GetInfo fetches one job's record (active jobs from the service,
// completed jobs from their KVS provenance trail).
func GetInfo(h *broker.Handle, id string) (*Info, error) {
	resp, err := h.RPC("job.info", wire.NodeidAny, map[string]string{"id": id})
	if err != nil {
		return nil, err
	}
	var info Info
	if err := resp.UnpackJSON(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// terminal reports whether a state ends the job lifecycle.
func terminal(state string) bool {
	return state == StateComplete || state == StateFailed || state == StateCancelled
}

// Wait blocks until the job reaches a terminal state and returns its
// final record, following job.state events.
func Wait(ctx context.Context, h *broker.Handle, id string) (*Info, error) {
	sub, err := h.Subscribe("job.state")
	if err != nil {
		return nil, err
	}
	defer sub.Close()

	// The job may already be done.
	if info, err := GetInfo(h, id); err == nil && terminal(info.State) {
		return info, nil
	}
	kc := kvs.NewClient(h)
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case ev, ok := <-sub.Chan():
			if !ok {
				return nil, fmt.Errorf("job: subscription closed waiting for %s", id)
			}
			var se stateEvent
			if err := ev.UnpackJSON(&se); err != nil || se.ID != id || !terminal(se.State) {
				continue
			}
			// Sync to the recording commit before reading the record.
			if err := kc.WaitVersion(se.Version); err != nil {
				return nil, err
			}
			return GetInfo(h, id)
		}
	}
}
