package broker

import (
	"testing"

	"fluxgo/internal/wire"
)

// BenchmarkLocalRPC measures one handle -> broker -> builtin -> handle
// round trip, the floor for every CMB operation.
func BenchmarkLocalRPC(b *testing.B) {
	br, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		b.Fatal(err)
	}
	br.Start()
	defer br.Shutdown()
	h := br.NewHandle()
	defer h.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RPC("cmb.ping", wire.NodeidAny, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalRPCNoTrace is BenchmarkLocalRPC with span recording
// disabled (TraceSpans < 0), isolating the observability plane's
// hot-path overhead; the acceptance budget is <5% on ns/op.
func BenchmarkLocalRPCNoTrace(b *testing.B) {
	br, err := New(Config{Rank: 0, Size: 1, TraceSpans: -1})
	if err != nil {
		b.Fatal(err)
	}
	br.Start()
	defer br.Shutdown()
	h := br.NewHandle()
	defer h.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RPC("cmb.ping", wire.NodeidAny, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModuleDispatch measures request dispatch into a loaded module
// and its response.
func BenchmarkModuleDispatch(b *testing.B) {
	br, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := br.LoadModule(&echoModule{name: "echo"}); err != nil {
		b.Fatal(err)
	}
	br.Start()
	defer br.Shutdown()
	h := br.NewHandle()
	defer h.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RPC("echo.echo", wire.NodeidAny, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMailboxThroughput measures the unbounded mailbox primitive
// every broker component is built on.
func BenchmarkMailboxThroughput(b *testing.B) {
	m := NewMailbox[int]()
	defer m.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-m.Out()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Push(i)
	}
	<-done
}
