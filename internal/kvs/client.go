package kvs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/cas"
	"fluxgo/internal/debuglock"
	"fluxgo/internal/wire"
)

// Client is the KVS API for one process, layered over a broker Handle.
// It provides the paper's call set: Put, Commit, Fence, Get, Watch,
// GetVersion, and WaitVersion. A Client is safe for concurrent use; the
// pending-put set is shared, so concurrent writers contribute to the
// same commit, like threads sharing a process's KVS context.
type Client struct {
	h       *broker.Handle
	service string

	mu      debuglock.Mutex
	pending []Op
	epoch   atomic.Uint64 // commit-name uniquifier
}

// NewClient wraps a broker handle in a KVS client for the default "kvs"
// service.
func NewClient(h *broker.Handle) *Client {
	return NewClientFor(h, "kvs")
}

// NewClientFor wraps a handle in a client for a specific kvs service
// instance (sharded deployments load several: "kvs0", "kvs1", ...).
func NewClientFor(h *broker.Handle, service string) *Client {
	c := &Client{h: h, service: service}
	c.mu.SetClass("kvs.Client.mu")
	return c
}

// topic builds a service-qualified topic.
func (c *Client) topic(method string) string { return c.service + "." + method }

// Retry policies. All retried client operations are idempotent: reads
// are side-effect free, sync re-registers a version waiter, and fence
// entries are deduplicated by ID at every aggregation level. Transient
// failures here are route errors during re-parenting or deadline expiry
// under partition, both of which heal.
var (
	readOpts  = broker.RPCOptions{Retries: 3, Backoff: 25 * time.Millisecond}
	fenceOpts = broker.RPCOptions{Retries: 4, Backoff: 50 * time.Millisecond}
)

// Handle returns the underlying broker handle.
func (c *Client) Handle() *broker.Handle { return c.h }

// Put records key = v (any JSON-marshalable value) in write-back mode:
// the value object is cached in the local broker's kvs module and the
// (key, SHA-1) tuple held pending until Commit or Fence.
func (c *Client) Put(key string, v any) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("kvs: put %q: %w", key, err)
	}
	return c.PutRaw(key, raw)
}

// PutRaw is Put with pre-marshaled JSON bytes.
func (c *Client) PutRaw(key string, raw json.RawMessage) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	encoded := cas.NewValue(raw).Encode()
	ref := cas.HashOf(encoded)
	body := putBody{Key: key, Ref: ref.String(), Data: encoded}
	var req any = body
	if c.h.BinaryBodies() {
		// Binary codec v3: the hot put path skips JSON's base64 encode of
		// the value object when the session negotiated binary bodies.
		req = body.bin()
	}
	if _, err := c.h.RPC(c.topic("put"), wire.NodeidAny, req); err != nil {
		return err
	}
	c.mu.Lock()
	c.pending = append(c.pending, Op{Key: key, Ref: ref.String()})
	c.mu.Unlock()
	return nil
}

// Delete records an unlink of key, applied at the next Commit or Fence.
func (c *Client) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	c.mu.Lock()
	c.pending = append(c.pending, Op{Key: key, Delete: true})
	c.mu.Unlock()
	return nil
}

// takePending atomically removes and returns the pending op set.
func (c *Client) takePending() []Op {
	c.mu.Lock()
	ops := c.pending
	c.pending = nil
	c.mu.Unlock()
	return ops
}

// restorePending puts ops back at the front after a failed commit.
func (c *Client) restorePending(ops []Op) {
	c.mu.Lock()
	c.pending = append(ops, c.pending...)
	c.mu.Unlock()
}

// Commit synchronously flushes pending tuples and dirty objects to the
// master, waits for the new root to be applied locally, and returns the
// new root version — giving read-your-writes consistency, exactly as the
// paper describes. Committing with nothing pending still returns the
// current version.
func (c *Client) Commit() (uint64, error) {
	ops := c.takePending()
	if len(ops) == 0 {
		return c.GetVersion()
	}
	name := fmt.Sprintf("commit.%d.%s.%d", c.h.Rank(), c.h.ID(), c.epoch.Add(1))
	return c.fence(name, 1, ops)
}

// Fence commits for a group of nprocs processes collectively: it blocks
// until every participant has entered the fence with the same name, then
// all pending ops are applied in one root transition. Names must be
// unique per collective operation (append an epoch for reuse).
func (c *Client) Fence(name string, nprocs int) (uint64, error) {
	if nprocs < 1 {
		return 0, fmt.Errorf("kvs: fence %q: nprocs %d < 1", name, nprocs)
	}
	return c.fence(name, nprocs, c.takePending())
}

func (c *Client) fence(name string, nprocs int, ops []Op) (uint64, error) {
	// The entry ID is globally unique (handle IDs embed the rank), so a
	// retried request — after a timeout or a route failure mid-fence —
	// is deduplicated at every aggregation level and can never double
	// count this participant or re-apply its ops.
	entry := fenceEntry{ID: name + "/" + c.h.ID(), Ops: ops}
	resp, err := c.h.RPCWithOptions(context.Background(), c.topic("fence"), wire.NodeidAny, fenceBody{
		Name:    name,
		NProcs:  nprocs,
		Entries: []fenceEntry{entry},
	}, fenceOpts)
	if err != nil {
		c.restorePending(ops)
		return 0, err
	}
	var body rootBody
	if err := resp.UnpackJSON(&body); err != nil {
		return 0, err
	}
	// Apply the new root locally before returning (read-your-writes).
	if err := c.WaitVersion(body.Version); err != nil {
		return 0, err
	}
	return body.Version, nil
}

// ErrNotFound reports whether err is a no-such-key KVS error.
func ErrNotFound(err error) bool {
	return wire.IsErrnum(err, broker.ErrnoNoEnt)
}

// ErrNotDir reports whether err indicates a key path traversing a value.
func ErrNotDir(err error) bool {
	return wire.IsErrnum(err, errNotDir)
}

// Get looks key up from the current local root, faulting missing objects
// in through the tree of slave caches, and unmarshals the value into
// out. Directory keys return an error; use GetDir.
func (c *Client) Get(key string, out any) error {
	resp, err := c.getRaw(key)
	if err != nil {
		return err
	}
	if resp.Val == nil {
		return fmt.Errorf("kvs: %q is a directory", key)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(resp.Val, out)
}

// GetRaw returns the raw JSON value stored at key.
func (c *Client) GetRaw(key string) (json.RawMessage, error) {
	resp, err := c.getRaw(key)
	if err != nil {
		return nil, err
	}
	if resp.Val == nil {
		return nil, fmt.Errorf("kvs: %q is a directory", key)
	}
	return resp.Val, nil
}

// GetDir returns the sorted entry names of the directory at key.
func (c *Client) GetDir(key string) ([]string, error) {
	resp, err := c.getRaw(key)
	if err != nil {
		return nil, err
	}
	if resp.Dir == nil {
		return nil, fmt.Errorf("kvs: %q is not a directory", key)
	}
	return resp.Dir, nil
}

// GetRef returns the content reference (hex SHA-1) of the object at key.
// Because of the hash-tree organization, a directory's reference changes
// whenever anything beneath it changes, at any depth.
func (c *Client) GetRef(key string) (string, error) {
	resp, err := c.getRaw(key)
	if err != nil {
		return "", err
	}
	return resp.Ref, nil
}

func (c *Client) getRaw(key string) (*getResp, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	resp, err := c.h.RPCWithOptions(context.Background(), c.topic("get"), wire.NodeidAny, getBody{Key: key}, readOpts)
	if err != nil {
		return nil, err
	}
	var body getResp
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return &body, nil
}

// RootRef returns the local root reference (hex) and version — a
// snapshot handle usable with GetAt even after later commits.
func (c *Client) RootRef() (string, uint64, error) {
	resp, err := c.h.RPCWithOptions(context.Background(), c.topic("getversion"), wire.NodeidAny, struct{}{}, readOpts)
	if err != nil {
		return "", 0, err
	}
	var body rootBody
	if err := resp.UnpackJSON(&body); err != nil {
		return "", 0, err
	}
	return body.Root, body.Version, nil
}

// GetAt reads key from the snapshot identified by rootRef (as returned
// by RootRef) instead of the current root. Because updates never mutate
// objects in place, old snapshots stay readable: the root switch is
// atomic precisely because "both new and old objects coexist in the
// caches" (the master pins all content; slave caches may need to fault
// expired objects back in).
func (c *Client) GetAt(rootRef, key string, out any) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	resp, err := c.h.RPCWithOptions(context.Background(), c.topic("get"), wire.NodeidAny, getBody{Key: key, Root: rootRef}, readOpts)
	if err != nil {
		return err
	}
	var body getResp
	if err := resp.UnpackJSON(&body); err != nil {
		return err
	}
	if body.Val == nil {
		return fmt.Errorf("kvs: %q is a directory", key)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body.Val, out)
}

// GetVersion returns the local root version (kvs_get_version). Passing
// it to another process's WaitVersion yields causal consistency.
func (c *Client) GetVersion() (uint64, error) {
	resp, err := c.h.RPCWithOptions(context.Background(), c.topic("getversion"), wire.NodeidAny, struct{}{}, readOpts)
	if err != nil {
		return 0, err
	}
	var body rootBody
	if err := resp.UnpackJSON(&body); err != nil {
		return 0, err
	}
	return body.Version, nil
}

// WaitVersion blocks until the local root version reaches at least
// version (kvs_wait_version). A deadline expiry while the version is
// legitimately still in flight re-registers the waiter (sync is
// idempotent), so WaitVersion survives lost setroot events: the kvs
// module's heartbeat root poll unsticks the version, and the retried
// sync observes it.
func (c *Client) WaitVersion(version uint64) error {
	_, err := c.h.RPCWithOptions(context.Background(), c.topic("sync"), wire.NodeidAny, syncBody{Version: version},
		broker.RPCOptions{Retries: 8, Backoff: 25 * time.Millisecond})
	return err
}

// WatchUpdate is one observed change of a watched key.
type WatchUpdate struct {
	Key     string
	Ref     string          // new content reference ("" if the key vanished)
	Val     json.RawMessage // value JSON, nil for directories/deletion
	Dir     []string        // directory listing, nil for values/deletion
	Exists  bool
	Version uint64 // root version that produced this state
}

// Watch registers a callback-style watch on key (kvs_watch): the
// returned channel receives the key's initial state and then one update
// whenever its content reference changes — which, for directories,
// happens when keys under them change at any path depth. The watch ends
// when ctx is done.
func (c *Client) Watch(ctx context.Context, key string) (<-chan WatchUpdate, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	sub, err := c.h.Subscribe(c.topic("setroot"))
	if err != nil {
		return nil, err
	}
	ch := make(chan WatchUpdate, 16)

	state := func(version uint64) WatchUpdate {
		u := WatchUpdate{Key: key, Version: version}
		resp, err := c.getRaw(key)
		if err == nil {
			u.Ref = resp.Ref
			u.Val = resp.Val
			u.Dir = resp.Dir
			u.Exists = true
		}
		return u
	}

	go func() {
		defer sub.Close()
		defer close(ch)
		ver, _ := c.GetVersion()
		last := state(ver)
		select {
		case ch <- last:
		case <-ctx.Done():
			return
		}
		for {
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-sub.Chan():
				if !ok {
					return
				}
				var body rootBody
				if err := ev.UnpackJSON(&body); err != nil {
					continue
				}
				cur := state(body.Version)
				if cur.Ref == last.Ref && cur.Exists == last.Exists {
					continue // unchanged under this root
				}
				last = cur
				select {
				case ch <- cur:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ch, nil
}
