package broker

// Membership-epoch plane.
//
// A comms session is elastic: ranks join through the cmb.join handshake
// and leave through a graceful drain. Every membership change is stamped
// with a monotonically increasing *membership epoch*, sequenced through
// the root as an epoch-tagged live.join / live.leave event, and folded
// into each broker's membership view in total order — so views converge
// exactly as the KVS does, by riding the event plane.
//
// The epoch is also carried in every wire message (codec v3). Links to
// departed ranks get a per-link fence set to the leave epoch: traffic
// still arriving from the departed rank necessarily carries an older
// epoch and is rejected at the broker boundary with ESTALE (requests) or
// dropped (anything else), always counted in cmb.epoch_rejects and
// logged. Links from not-yet-admitted joiners start "pending" and admit
// nothing but the join handshake itself.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"fluxgo/internal/wire"
)

// MembershipEvent is the payload of the epoch-tagged live.join and
// live.leave events (wire.EventJoin / wire.EventLeave): the rank that
// joined or departed and the membership epoch its change begins.
type MembershipEvent struct {
	Rank  int    `json:"rank"`
	Epoch uint32 `json:"epoch"`
}

// joinBody is the payload of the cmb.join handshake: the first request a
// joining broker sends on its new parent-tree link.
type joinBody struct {
	Session     string `json:"session"`
	WireVersion int    `json:"wire_version"`
	Rank        int    `json:"rank"`
	// BinBodies advertises that this joiner can emit binary-coded (codec
	// v3) bodies on hot services. Decoders always sniff, so the flag only
	// matters for the downgrade direction: a joiner keeps binary on iff
	// the parent echoes the capability back (older parents omit it).
	BinBodies bool `json:"bin_bodies,omitempty"`
}

// Epoch returns the membership epoch this broker currently operates
// under. Founding brokers start at epoch 1.
func (b *Broker) Epoch() uint32 { return b.epoch.Load() }

// RankSpace returns the current rank-space size: the founding size plus
// every rank granted by growth, tombstoned (departed) ranks included.
// Rank-addressed routing bounds-checks against it.
func (b *Broker) RankSpace() int { return int(b.space.Load()) }

// LiveSize returns the number of live (non-departed) ranks in this
// broker's membership view.
func (b *Broker) LiveSize() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.LiveCount()
}

// Departed reports whether rank has gracefully left the session.
func (b *Broker) Departed(rank int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.Left(rank)
}

// LiveRanks returns the live ranks in this broker's membership view, in
// ascending order.
func (b *Broker) LiveRanks() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.LiveRanks()
}

// JoinedLate reports whether this broker was added by session growth
// after the founding ranks started. Late joiners skip founding-only
// collectives (e.g. the resrc enumeration fence, whose count was fixed
// at session start).
func (b *Broker) JoinedLate() bool { return b.cfg.Joined }

// admitEpoch is the membership fence at the broker boundary: it decides
// whether a message that arrived over a link may enter routing. Loop-
// internal submissions (from == nil, which includes in-process handles'
// armed messages routed via their handle link) are never fenced.
func (b *Broker) admitEpoch(in inbound) bool {
	l, m := in.from, in.msg
	if l == nil {
		return true
	}
	if l.pending.Load() {
		if m.Type == wire.Request && m.Topic == wire.TopicJoin {
			return true
		}
		b.rejectEpoch(in, "link awaiting cmb.join admission")
		return false
	}
	if fence := l.minEpoch.Load(); fence != 0 && m.Epoch != 0 && m.Epoch < fence {
		b.rejectEpoch(in, fmt.Sprintf("epoch %d below link fence %d", m.Epoch, fence))
		return false
	}
	return true
}

// rejectEpoch disposes of a message refused by the membership fence.
// Requests fail fast back to their caller with ESTALE; everything else
// is dropped. Either way the rejection is counted in cmb.epoch_rejects
// and logged — fluxlint's errno-discipline pass enforces that epoch-
// fenced drops are never silent.
func (b *Broker) rejectEpoch(in inbound, why string) {
	b.ctr.epochRejects.Inc()
	m := in.msg
	b.log.Debugf(wire.ServiceCMB, "epoch fence: %s %q from %s rejected: %s", m.Type, m.Topic, in.from.id, why)
	if m.Type == wire.Request && m.Seq != 0 {
		m.PushRoute(in.from.id)
		b.respondErr(m, ErrnoStale, fmt.Sprintf("rank %d: stale membership epoch: %s", b.cfg.Rank, why))
	}
}

// applyMembershipLocked folds an epoch-tagged membership event into this
// broker's view. Called with b.mu held from applyEvent, so the fold is
// atomic with the event's sequencing: every broker applies the same
// changes in the same total order, which is what makes views convergent.
//
// The fold is idempotent per rank, NOT epoch-gated: a replayed or late
// event whose change is already in the view is a no-op, but an old-epoch
// event carrying a change this broker missed (lossy links under chaos)
// still folds. The epoch itself only ratchets up.
func (b *Broker) applyMembershipLocked(ev *wire.Message) {
	var body MembershipEvent
	if err := ev.UnpackJSON(&body); err != nil || body.Rank < 0 {
		b.log.Warnf(wire.ServiceCMB, "malformed membership event %q dropped: %v", ev.Topic, err)
		return
	}
	switch ev.Topic {
	case wire.EventJoin:
		b.growViewLocked(body.Rank + 1)
	case wire.EventLeave:
		b.leaveViewLocked(body.Rank, body.Epoch)
	}
	b.ratchetEpochLocked(body.Epoch)
}

// growViewLocked extends the membership view (and rank space) to cover
// size ranks. No-op if the view already does.
func (b *Broker) growViewLocked(size int) {
	if size <= b.view.Size() {
		return
	}
	b.view.Grow(size - b.view.Size())
	b.space.Store(uint32(b.view.Size()))
	b.ctr.joins.Inc()
}

// leaveViewLocked tombstones rank in the membership view and fences
// every link to it at epoch. No-op if the rank already departed.
func (b *Broker) leaveViewLocked(rank int, epoch uint32) {
	if !b.view.Leave(rank) {
		return
	}
	b.ctr.leaves.Inc()
	// Fence every link to the departed rank at the leave epoch: its
	// residual traffic is rejected at the boundary from here on. The
	// broker holding its child tree link performs the drain (the
	// link's EOF fails the in-flight requests routed over it).
	drained := false
	for _, l := range b.links {
		if linkPeerRank(l.id) == rank {
			l.minEpoch.Store(epoch)
			if l.kind == LinkChildTree {
				drained = true
			}
		}
	}
	if drained {
		b.ctr.drains.Inc()
	}
}

// ratchetEpochLocked raises the broker's membership epoch to epoch if
// it is newer.
func (b *Broker) ratchetEpochLocked(epoch uint32) {
	if epoch > b.epoch.Load() {
		b.epoch.Store(epoch)
		b.epochGauge.Set(int64(epoch))
	}
}

// startMembershipSync launches membership anti-entropy off-loop, at
// most one sync in flight. It is triggered by the two signs this broker
// may hold a stale view: an event-sequence gap (an event carrying a
// membership change may have been lost with the gap), and a wire header
// carrying a newer epoch than ours. The root never syncs — every
// membership change sequences through it, so its view is authoritative.
func (b *Broker) startMembershipSync() {
	if b.cfg.Rank == 0 || !b.syncing.CompareAndSwap(false, true) {
		return
	}
	b.bg.Add(1)
	go func() {
		defer b.bg.Done()
		defer b.syncing.Store(false)
		b.syncMembership()
	}()
}

// runAntiEntropy is the periodic arm of membership anti-entropy: every
// SyncInterval the broker pulls its parent's view, whether or not a
// staleness trigger fired. The triggers alone are not enough — a broker
// can ratchet to the current epoch off a heartbeat while a lost leave
// event keeps a rank alive in its view forever, and with the epochs
// equal no later message re-triggers a sync. The periodic pull closes
// that hole: the root's view walks down one tree level per tick.
func (b *Broker) runAntiEntropy() {
	defer b.bg.Done()
	for {
		t := b.cfg.Clock.NewTimer(b.cfg.SyncInterval)
		select {
		case <-b.done:
			t.Stop()
			return
		case <-t.C():
		}
		b.startMembershipSync()
	}
}

// syncMembership pulls the parent's membership view (cmb.info carries
// the epoch, rank space, and tombstones) and folds it idempotently. One
// tree hop, not a route to the root: the self-healing machinery keeps
// the parent chain live, while ring and rank-addressed routes may pass
// through crashed ranks. A stale parent is fine — events forwarded down
// the tree keep their root epoch stamp, so a still-stale child keeps
// re-triggering until the fresh view has walked down to it; the root is
// the fixpoint. A failed pull is only logged for the same reason:
// convergence needs no retry loop here.
func (b *Broker) syncMembership() {
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC(wire.TopicInfo, wire.NodeidUpstream, nil)
	if err != nil {
		b.log.Debugf(wire.ServiceCMB, "membership sync: %v", err)
		return
	}
	var body struct {
		Epoch      uint32 `json:"epoch"`
		Size       int    `json:"size"`
		Tombstones []int  `json:"tombstones"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		b.log.Warnf(wire.ServiceCMB, "membership sync: bad info response: %v", err)
		return
	}
	b.mu.Lock()
	b.growViewLocked(body.Size)
	for _, r := range body.Tombstones {
		b.leaveViewLocked(r, body.Epoch)
	}
	b.ratchetEpochLocked(body.Epoch)
	b.mu.Unlock()
}

// linkPeerRank extracts the peer rank from an inter-broker link id
// ("t:rank:5" -> 5), or -1 for client and handle links.
func linkPeerRank(id string) int {
	i := strings.Index(id, ":")
	if i < 0 {
		return -1
	}
	rest := strings.TrimPrefix(id[i+1:], "rank:")
	if rest == id[i+1:] {
		return -1
	}
	r, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return r
}

// serveJoin handles a cmb.join handshake arriving (over a pending child
// tree link) at the joiner's chosen parent. It validates the session id,
// wire version, and proposed rank against the link the request actually
// arrived on, then admits the link and replies with the current epoch,
// rank space, and event sequence so the joiner knows where it stands.
func (b *Broker) serveJoin(m *wire.Message) {
	var body joinBody
	if err := m.UnpackJSON(&body); err != nil {
		b.respondErr(m, ErrnoInval, err.Error())
		return
	}
	if body.WireVersion != wire.Version() {
		b.respondErr(m, ErrnoProto,
			fmt.Sprintf("cmb: join speaks wire version %d, this session speaks %d", body.WireVersion, wire.Version()))
		return
	}
	if body.Session != b.cfg.SessionID {
		b.respondErr(m, ErrnoProto,
			fmt.Sprintf("cmb: join for session %q, this is session %q", body.Session, b.cfg.SessionID))
		return
	}
	if len(m.Route) == 0 {
		b.respondErr(m, ErrnoInval, "cmb: join must arrive over a link")
		return
	}
	id := m.Route[len(m.Route)-1]
	if linkPeerRank(id) != body.Rank {
		b.respondErr(m, ErrnoProto,
			fmt.Sprintf("cmb: join claims rank %d but arrived on link %s", body.Rank, id))
		return
	}
	b.mu.Lock()
	l := b.links[id]
	tombstoned := b.view.Left(body.Rank)
	live := b.view.LiveCount()
	b.mu.Unlock()
	if tombstoned {
		b.respondErr(m, ErrnoStale,
			fmt.Sprintf("cmb: rank %d departed at an earlier epoch and cannot rejoin", body.Rank))
		return
	}
	if l == nil || l.kind != LinkChildTree {
		b.respondErr(m, ErrnoInval, fmt.Sprintf("cmb: join link %s is not a child tree link", id))
		return
	}
	l.pending.Store(false)
	resp, err := wire.NewResponse(m, map[string]any{
		"epoch":          b.epoch.Load(),
		"size":           b.RankSpace(),
		"live":           live,
		"last_event_seq": b.LastEventSeq(),
		"bin_bodies":     b.binBodies.Load(),
	})
	if err == nil {
		b.routeResponse(inbound{msg: resp})
	}
}

// serveGrow handles cmb.grow by invoking the session's growth hook.
// Growing publishes membership events and runs the join handshake, both
// of which need this broker's loop, so the hook runs off-loop (like
// rmmod); Shutdown waits for it through b.bg.
func (b *Broker) serveGrow(m *wire.Message) {
	grow := b.cfg.Grow
	if grow == nil {
		b.respondErr(m, ErrnoNoSys, "cmb: no membership hooks installed at this broker")
		return
	}
	var body struct {
		N int `json:"n"`
	}
	if err := m.UnpackJSON(&body); err != nil || body.N < 1 {
		b.respondErr(m, ErrnoInval, "cmb: grow needs n >= 1")
		return
	}
	b.bg.Add(1)
	go func() {
		defer b.bg.Done()
		first, err := grow(body.N)
		if err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return
		}
		resp, rerr := wire.NewResponse(m, map[string]any{
			"first": first,
			"n":     body.N,
			"epoch": b.epoch.Load(),
			"size":  b.RankSpace(),
		})
		if rerr == nil {
			b.routeResponse(inbound{msg: resp})
		}
	}()
}

// serveShrink handles cmb.shrink by invoking the session's drain hook,
// off-loop for the same reason as serveGrow.
func (b *Broker) serveShrink(m *wire.Message) {
	shrink := b.cfg.Shrink
	if shrink == nil {
		b.respondErr(m, ErrnoNoSys, "cmb: no membership hooks installed at this broker")
		return
	}
	var body struct {
		Ranks []int `json:"ranks"`
	}
	if err := m.UnpackJSON(&body); err != nil || len(body.Ranks) == 0 {
		b.respondErr(m, ErrnoInval, "cmb: shrink needs at least one rank")
		return
	}
	for _, r := range body.Ranks {
		// Draining this rank waits for this broker to shut down, which in
		// turn waits for this very handler: refuse instead of deadlocking.
		if r == b.cfg.Rank {
			b.respondErr(m, ErrnoInval,
				fmt.Sprintf("cmb: rank %d cannot drain itself; send cmb.shrink to another rank", r))
			return
		}
	}
	b.bg.Add(1)
	go func() {
		defer b.bg.Done()
		if err := shrink(body.Ranks); err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return
		}
		resp, rerr := wire.NewResponse(m, map[string]any{
			"ranks": body.Ranks,
			"epoch": b.epoch.Load(),
			"size":  b.RankSpace(),
		})
		if rerr == nil {
			b.routeResponse(inbound{msg: resp})
		}
	}()
}

// serveRestart handles cmb.restart by invoking the session's restart
// hook, off-loop for the same reason as serveGrow: bringing a rank back
// publishes a membership event and runs the join handshake, both of
// which need this broker's loop.
func (b *Broker) serveRestart(m *wire.Message) {
	restart := b.cfg.Restart
	if restart == nil {
		b.respondErr(m, ErrnoNoSys, "cmb: no membership hooks installed at this broker")
		return
	}
	var body struct {
		Rank int `json:"rank"`
	}
	if err := m.UnpackJSON(&body); err != nil || body.Rank < 1 {
		b.respondErr(m, ErrnoInval, "cmb: restart needs rank >= 1")
		return
	}
	b.bg.Add(1)
	go func() {
		defer b.bg.Done()
		if err := restart(body.Rank); err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return
		}
		resp, rerr := wire.NewResponse(m, map[string]any{
			"rank":  body.Rank,
			"epoch": b.epoch.Load(),
			"size":  b.RankSpace(),
		})
		if rerr == nil {
			b.routeResponse(inbound{msg: resp})
		}
	}()
}

// JoinSession runs the cmb.join admission handshake for this handle's
// broker: one upstream RPC to the parent the session wired it to,
// retried while the overlay settles. Until it succeeds the parent's
// fence admits nothing else from this broker.
func (h *Handle) JoinSession(ctx context.Context, retries int) error {
	body := joinBody{
		Session:     h.b.cfg.SessionID,
		WireVersion: wire.Version(),
		Rank:        h.b.cfg.Rank,
		BinBodies:   h.b.binBodies.Load(),
	}
	resp, err := h.RPCWithOptions(ctx, wire.TopicJoin, wire.NodeidUpstream, body, RPCOptions{Retries: retries})
	if err != nil {
		return err
	}
	if h.b.binBodies.Load() {
		// Binary bodies stay on only when the parent echoes the capability;
		// a parent that omits it (an older session) gets plain JSON.
		var ack struct {
			BinBodies bool `json:"bin_bodies"`
		}
		if resp.UnpackJSON(&ack) != nil || !ack.BinBodies {
			h.b.SetBinaryBodies(false)
			h.b.log.Infof(wire.ServiceCMB, "parent does not speak binary bodies; falling back to JSON")
		}
	}
	return nil
}
